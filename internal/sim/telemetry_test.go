package sim

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"zombiessd/internal/core"
	"zombiessd/internal/dftl"
	"zombiessd/internal/fault"
	"zombiessd/internal/ftl"
	"zombiessd/internal/lxssd"
	"zombiessd/internal/scrub"
	"zombiessd/internal/ssd"
	"zombiessd/internal/telemetry"
	"zombiessd/internal/trace"
	"zombiessd/internal/workload"
)

// telemetryTestTrace generates a shared mail replay for the telemetry
// tests.
func telemetryTestTrace(t *testing.T, n int64) ([]trace.Record, int64) {
	t.Helper()
	p, ok := workload.ProfileByName("mail")
	if !ok {
		t.Fatal("mail workload missing")
	}
	recs, err := workload.Generate(p, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	var footprint int64
	for _, r := range recs {
		if int64(r.LBA) >= footprint {
			footprint = int64(r.LBA) + 1
		}
	}
	return recs, footprint
}

// telemetryTestConfig assembles one instrumented device config.
func telemetryTestConfig(kind Kind, footprint int64, tel *telemetry.Telemetry) Config {
	popWeight := 0.0
	if kind == KindDVP || kind == KindDVPDedup {
		popWeight = DefaultPopularityWeight
	}
	return Config{
		Geometry:     GeometryFor(footprint, 0.85),
		Latency:      ssd.PaperLatency(),
		Store:        ftl.StoreConfig{GCFreeBlockThreshold: 2, PopularityWeight: popWeight},
		LogicalPages: footprint,
		Kind:         kind,
		PoolKind:     PoolMQ,
		MQ:           core.MQConfig{Queues: 8, Capacity: 2000, DefaultLifetime: 8192},
		LX:           lxssd.Config{Capacity: 2000, MinPopularity: 0},
		Telemetry:    tel,
	}
}

// TestPhaseSumExact is the property test of the latency attribution: on
// every architecture, every single host request's phase components sum
// exactly to its end-to-end latency, no phase is negative, and the running
// totals agree. One arm adds ECC retries, a patrol scrubber and a DRAM
// write buffer so the ECC phase and the background origins are exercised
// too.
func TestPhaseSumExact(t *testing.T) {
	recs, footprint := telemetryTestTrace(t, 20_000)
	arms := []struct {
		name string
		kind Kind
		mod  func(*Config)
	}{
		{"baseline", KindBaseline, nil},
		{"dvp", KindDVP, nil},
		{"dedup", KindDedup, nil},
		{"dvp+dedup", KindDVPDedup, nil},
		{"lx", KindLX, nil},
		{"dvp-preempt", KindDVP, func(cfg *Config) {
			cfg.Store.Preempt = ftl.PreemptConfig{PartialK: 8, Lookahead: 2, MaxSuspends: 4}
		}},
		{"dvp-dftl", KindDVP, func(cfg *Config) {
			// A tiny CMT so evictions, write-backs and translation GC all
			// fire; the map_miss/map_writeback phases must still sum exactly.
			cfg.DFTL = dftl.Config{Enable: true, CMTFrames: 4, BatchEvict: true}
		}},
		{"dedup-dftl", KindDVPDedup, func(cfg *Config) {
			cfg.DFTL = dftl.Config{Enable: true, CMTFrames: 4}
		}},
		{"dvp-faulty", KindDVP, func(cfg *Config) {
			cfg.Faults = fault.Config{
				ReadFailProb: 0.05,
				Seed:         7,
				Integrity:    fault.IntegrityConfig{BaseRBER: 1e-5, RetentionRate: 1e-9},
			}
			cfg.Scrub = scrub.Config{Interval: 50 * ssd.Millisecond}
			cfg.WriteBufferPages = 256
		}},
	}
	for _, arm := range arms {
		t.Run(arm.name, func(t *testing.T) {
			tel := telemetry.New(telemetry.Config{Enabled: true})
			cfg := telemetryTestConfig(arm.kind, footprint, tel)
			if arm.mod != nil {
				arm.mod(&cfg)
			}
			var checked int64
			tel.OnRequestEnd = func(req telemetry.Request) {
				checked++
				var sum ssd.Time
				for p := telemetry.Phase(0); p < telemetry.NumPhases; p++ {
					if req.Phases[p] < 0 {
						t.Fatalf("request %d: phase %v negative: %d", checked, p, req.Phases[p])
					}
					sum += req.Phases[p]
				}
				if sum != req.Latency() {
					t.Fatalf("request %d (%v): phases sum to %d, latency is %d (%+v)",
						checked, req.Op, sum, req.Latency(), req.Phases)
				}
			}
			dev, err := NewDevice(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(dev, recs, RunOptions{LogicalPages: footprint, PreconditionPages: footprint}); err != nil {
				t.Fatal(err)
			}
			if checked != int64(len(recs)) {
				t.Errorf("checked %d requests, want %d", checked, len(recs))
			}
			phases, latency := tel.Attribution().Totals()
			var total int64
			for _, p := range phases {
				total += p
			}
			if total != latency {
				t.Errorf("phase totals sum to %d, end-to-end total is %d", total, latency)
			}
			if tel.Attribution().Requests() != int64(len(recs)) {
				t.Errorf("attribution closed %d requests, want %d", tel.Attribution().Requests(), len(recs))
			}
		})
	}
}

// TestTelemetryExportsEndToEnd runs one instrumented device and validates
// every export format: the Chrome trace against the schema check CI uses,
// the Prometheus scrape against the exposition-format check, and the CSV
// header/row shape.
func TestTelemetryExportsEndToEnd(t *testing.T) {
	recs, footprint := telemetryTestTrace(t, 20_000)
	tel := telemetry.New(telemetry.Config{Enabled: true})
	dev, err := NewDevice(telemetryTestConfig(KindDVP, footprint, tel))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(dev, recs, RunOptions{LogicalPages: footprint, PreconditionPages: footprint}); err != nil {
		t.Fatal(err)
	}

	var tr bytes.Buffer
	if err := tel.WriteTrace(&tr); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateTraceJSON(tr.Bytes()); err != nil {
		t.Errorf("trace export fails its own schema check: %v", err)
	}

	var prom bytes.Buffer
	if err := tel.WritePrometheus(&prom, tel.Now()); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidatePrometheusText(prom.Bytes()); err != nil {
		t.Errorf("prometheus export fails its own format check: %v", err)
	}
	for _, metric := range []string{
		"flash_chip_ops_total", "flash_ops_total", "request_latency_us",
		"request_phase_us", "dvp_hit_rate", "gc_debt_blocks", "write_amplification",
	} {
		if !strings.Contains(prom.String(), metric) {
			t.Errorf("prometheus export missing %s", metric)
		}
	}

	var buf bytes.Buffer
	if err := tel.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("CSV export does not parse: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("CSV export has %d rows, want a header plus samples", len(rows))
	}
	if rows[0][0] != "time_us" {
		t.Errorf("CSV header starts %q, want time_us first", rows[0][0])
	}
	for i, row := range rows[1:] {
		if len(row) != len(rows[0]) {
			t.Fatalf("CSV row %d has %d columns, header has %d", i+1, len(row), len(rows[0]))
		}
	}
}

// TestTelemetryOriginsObserved checks that the per-origin flash-op
// counters attribute real traffic: host, GC and preconditioning ops must
// all be non-zero on a GC-active run.
func TestTelemetryOriginsObserved(t *testing.T) {
	recs, footprint := telemetryTestTrace(t, 20_000)
	tel := telemetry.New(telemetry.Config{Enabled: true})
	dev, err := NewDevice(telemetryTestConfig(KindBaseline, footprint, tel))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(dev, recs, RunOptions{LogicalPages: footprint, PreconditionPages: footprint}); err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	if err := tel.WritePrometheus(&prom, tel.Now()); err != nil {
		t.Fatal(err)
	}
	for _, origin := range []string{"host", "gc", "precond"} {
		found := false
		for _, line := range strings.Split(prom.String(), "\n") {
			if strings.HasPrefix(line, "flash_ops_total") &&
				strings.Contains(line, `origin="`+origin+`"`) &&
				!strings.HasSuffix(line, " 0") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no non-zero flash_ops_total sample for origin %q", origin)
		}
	}
}
