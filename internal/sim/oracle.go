package sim

import (
	"errors"
	"fmt"
	"sort"

	"zombiessd/internal/fault"
	"zombiessd/internal/ftl"
	"zombiessd/internal/trace"
)

// InterruptedWrite marks a host write whose flash update was cut short by
// the power-loss trigger. LPN identifies the in-flight page so the oracle
// can apply its torn-write exemption; Unwrap exposes fault.ErrPowerLoss.
type InterruptedWrite struct {
	LPN ftl.LPN
	Err error
}

func (e *InterruptedWrite) Error() string {
	return fmt.Sprintf("sim: write of LPN %d interrupted: %v", e.LPN, e.Err)
}

func (e *InterruptedWrite) Unwrap() error { return e.Err }

// wrapInterrupted tags power-loss errors escaping a host write with the
// in-flight LPN; other errors pass through untouched.
func wrapInterrupted(lpn ftl.LPN, err error) error {
	if errors.Is(err, fault.ErrPowerLoss) {
		return &InterruptedWrite{LPN: lpn, Err: err}
	}
	return err
}

// Shadow is the crash-consistency oracle's ground truth: the last content
// durably acknowledged for every logical page. For unbuffered devices a
// successful Write is durable (its OOB stamp or journal record lands
// before the acknowledgement); for buffered devices only pages flushed to
// the inner device count — RAM-acknowledged writes are volatile by design
// and may legitimately vanish in a crash.
type Shadow struct {
	durable map[ftl.LPN]trace.Hash
	// latest is the newest host-acknowledged content per page, durable or
	// not. A buffered device may legitimately return it instead of the
	// durable version — newer-than-durable is fine, older is a violation.
	latest map[ftl.LPN]trace.Hash
}

// NewShadow returns an empty shadow store.
func NewShadow() *Shadow {
	return &Shadow{
		durable: make(map[ftl.LPN]trace.Hash),
		latest:  make(map[ftl.LPN]trace.Hash),
	}
}

// Ack records that content h at lpn has been durably acknowledged.
func (s *Shadow) Ack(lpn ftl.LPN, h trace.Hash) { s.durable[lpn] = h }

// Observe records a host-level write acknowledgement, durable or not; the
// replay loop calls it for every successful write so Verify can accept a
// buffered page that is newer than its durable version.
func (s *Shadow) Observe(lpn ftl.LPN, h trace.Hash) { s.latest[lpn] = h }

// Exempt removes lpn from verification. The replay loop calls it for the
// one page whose flash update was in flight when power failed: flash gives
// no atomicity guarantee for the page under write (its previous copy may
// already have been reclaimed before the replacement landed), matching the
// per-page torn-write exclusion real drives document.
func (s *Shadow) Exempt(lpn ftl.LPN) { delete(s.durable, lpn) }

// Len returns the number of pages under verification.
func (s *Shadow) Len() int { return len(s.durable) }

// Violation is one integrity failure: a durably acknowledged page that
// reads back wrong (stale or torn) or not at all (lost).
type Violation struct {
	LPN  ftl.LPN
	Want trace.Hash
	Got  trace.Hash
	Lost bool // acknowledged but unreadable after recovery
}

// String renders the violation for reports.
func (v Violation) String() string {
	if v.Lost {
		return fmt.Sprintf("LPN %d: acknowledged write lost", v.LPN)
	}
	return fmt.Sprintf("LPN %d: read %x, want acknowledged %x", v.LPN, v.Got[:4], v.Want[:4])
}

// Verify checks every durably acknowledged page against the device and
// returns the violations, LPN-ascending. A correct device returns none:
// each page must read back its last durably acknowledged content (or, for
// a page still dirty in a volatile buffer, the newer host-acknowledged
// content). Anything else — older, torn, or unreadable — is a violation.
func (s *Shadow) Verify(dev HashReader) []Violation {
	lpns := make([]ftl.LPN, 0, len(s.durable))
	for l := range s.durable {
		lpns = append(lpns, l)
	}
	sort.Slice(lpns, func(i, j int) bool { return lpns[i] < lpns[j] })
	var out []Violation
	for _, l := range lpns {
		want := s.durable[l]
		got, ok := dev.ReadHash(l)
		switch {
		case !ok:
			out = append(out, Violation{LPN: l, Want: want, Lost: true})
		case got != want && got != s.latest[l]:
			out = append(out, Violation{LPN: l, Want: want, Got: got})
		}
	}
	return out
}

// AttachShadow wires a fresh shadow store to dev and reports whether the
// caller must Ack successful writes itself. True for unbuffered devices
// (write acknowledgement is durable); false for buffered devices, where
// the flush hook acks pages as they durably reach flash.
func AttachShadow(dev Device) (*Shadow, bool) {
	sh := NewShadow()
	// Strip wrappers that add no durability semantics until the buffered
	// layer (if any) is exposed.
	for {
		switch d := dev.(type) {
		case *healthDevice:
			dev = d.inner
		case *preemptDevice:
			dev = d.inner
		case *scrubbedDevice:
			dev = d.inner
		default:
			if bd, ok := dev.(*bufferedDevice); ok {
				bd.SetFlushHook(sh.Ack)
				return sh, false
			}
			return sh, true
		}
	}
}
