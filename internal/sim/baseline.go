package sim

import (
	"zombiessd/internal/ftl"
	"zombiessd/internal/ssd"
	"zombiessd/internal/telemetry"
	"zombiessd/internal/trace"
)

// baselineDevice is the paper's Baseline: a page-mapped FTL with greedy GC
// and no content awareness. Every host write programs a flash page.
type baselineDevice struct {
	cfg    Config
	bus    *ssd.Bus
	store  *ftl.Store
	mapper *ftl.Mapper
	steer  *streamSteer
	m      DeviceMetrics
}

func newBaselineDevice(cfg Config, bus *ssd.Bus, store *ftl.Store) (*baselineDevice, error) {
	mapper, err := ftl.NewMapper(cfg.LogicalPages, cfg.Geometry.TotalPages())
	if err != nil {
		return nil, err
	}
	store.OnRelocate = mapper.Relocate
	store.OwnerOf = mapper.OwnerOf
	d := &baselineDevice{
		cfg:    cfg,
		bus:    bus,
		store:  store,
		mapper: mapper,
		steer:  newStreamSteer(cfg.HotColdStreams, cfg.LogicalPages),
	}
	// Through d so post-crash recovery can swap in a rebuilt mapper
	// without rewiring.
	store.LookupOf = func(lpn ftl.LPN) (ssd.PPN, bool) { return d.mapper.Lookup(lpn) }
	return d, nil
}

// Write implements Device.
func (d *baselineDevice) Write(lpn ftl.LPN, h trace.Hash, now ssd.Time) (ssd.Time, error) {
	d.m.HostWrites++
	ppn, done, err := d.store.ProgramStream(now, d.steer.classify(lpn))
	if err != nil {
		return 0, wrapInterrupted(lpn, err)
	}
	d.store.StampOOB(ppn, lpn, h, false)
	if old := d.mapper.Bind(lpn, ppn); old != ssd.InvalidPPN {
		if err := d.store.Invalidate(old); err != nil {
			return 0, err
		}
	}
	if done, err = d.store.MapWrite(lpn, ppn, done); err != nil {
		return 0, wrapInterrupted(lpn, err)
	}
	return done, nil
}

// Read implements Device.
func (d *baselineDevice) Read(lpn ftl.LPN, now ssd.Time) (ssd.Time, error) {
	d.m.HostReads++
	ppn, ok := d.mapper.Lookup(lpn)
	if !ok {
		d.m.UnmappedReads++
		return now, nil
	}
	now, err := d.store.MapRead(lpn, now)
	if err != nil {
		return 0, wrapInterrupted(lpn, err)
	}
	return absorbUncorrectable(d.store.Read(ppn, now))
}

// Metrics implements Device.
func (d *baselineDevice) Metrics() DeviceMetrics {
	d.m.GC = d.store.GC()
	d.m.Faults = d.store.FaultStats()
	d.m.Dftl = d.store.DftlStats()
	busCounts(&d.m, d.bus)
	return d.m
}

// registerTelemetry adds the baseline's architecture-specific gauges.
func (d *baselineDevice) registerTelemetry(tel *telemetry.Telemetry) {
	tel.RegisterGauge("unmapped_reads_total",
		"reads of never-written logical pages, served as no-ops", nil,
		func(ssd.Time) float64 { return float64(d.m.UnmappedReads) })
}

// Bus exposes the flash timing model for utilization reporting.
func (d *baselineDevice) Bus() *ssd.Bus { return d.bus }

// Store exposes the physical store for wear and capacity introspection.
func (d *baselineDevice) Store() *ftl.Store { return d.store }
