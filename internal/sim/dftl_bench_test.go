package sim

import (
	"testing"

	"zombiessd/internal/core"
	"zombiessd/internal/dftl"
	"zombiessd/internal/ftl"
	"zombiessd/internal/ssd"
)

// BenchmarkRunDftl measures the full replay loop with the page map in free
// RAM (the production default) and flash-resident behind a bounded CMT, so
// `make bench` quantifies what demand-paging the map costs end to end. The
// off arm is the baseline the on arm is compared to in BENCH_dftl.json.
func BenchmarkRunDftl(b *testing.B) {
	recs, footprint := benchReplay(b)
	epp := int64(dftl.EntriesPerPage(4096))
	frames := int((footprint + epp - 1) / epp / 4)
	if frames < 2 {
		frames = 2
	}
	for _, mode := range []struct {
		name string
		cfg  dftl.Config
	}{
		{"off", dftl.Config{}},
		{"on", dftl.Config{Enable: true, CMTFrames: frames, BatchEvict: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Lower utilization than the telemetry benchmark: the
				// translation stream needs its own frontier block per plane
				// plus garbage room on top of the data stream's.
				cfg := Config{
					Geometry:     GeometryFor(footprint, 0.70),
					Latency:      ssd.PaperLatency(),
					Store:        ftl.StoreConfig{GCFreeBlockThreshold: 2, PopularityWeight: DefaultPopularityWeight},
					LogicalPages: footprint,
					Kind:         KindDVP,
					PoolKind:     PoolMQ,
					MQ:           core.MQConfig{Queues: 8, Capacity: 3000, DefaultLifetime: 8192},
					DFTL:         mode.cfg,
				}
				dev, err := NewDevice(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := Run(dev, recs, RunOptions{LogicalPages: footprint, PreconditionPages: footprint})
				if err != nil {
					b.Fatal(err)
				}
				if res.Metrics.HostWrites == 0 {
					b.Fatal("replay performed no writes")
				}
				if mode.cfg.Enable && res.Metrics.Dftl.TransPrograms == 0 {
					b.Fatal("flash-resident arm produced no translation programs")
				}
			}
		})
	}
}
