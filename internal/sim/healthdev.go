package sim

import (
	"errors"
	"fmt"

	"zombiessd/internal/ftl"
	"zombiessd/internal/health"
	"zombiessd/internal/recovery"
	"zombiessd/internal/scrub"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// healthDevice interposes the device health governor in front of any
// device: before every host operation it samples the store's vital signs
// (free blocks, GC debt, retired blocks, lost pages), walks the governor's
// degradation ladder, and enforces the resulting state — throttling,
// rejecting, or retrying instead of letting a stressed drive escalate an
// allocation failure into a failed run. The wrapper is outermost: its
// verdict must gate everything beneath it, including partial GC and the
// scrubber, because a read-only or dead drive performs no new work at all.
type healthDevice struct {
	inner Device
	store *ftl.Store
	gov   *health.Governor
	cfg   health.Config
}

func newHealthDevice(inner Device, store *ftl.Store, cfg health.Config) *healthDevice {
	return &healthDevice{
		inner: inner,
		store: store,
		gov:   health.New(cfg),
		cfg:   cfg.WithDefaults(),
	}
}

// sample reads the drive's vital signs. A nil store (possible only in
// unit-test rigs) reports a perfectly healthy drive.
func (d *healthDevice) sample() health.Sample {
	if d.store == nil {
		return health.Sample{}
	}
	return health.Sample{
		FreeBlocks:    d.store.TotalFreeBlocks(),
		GCDebt:        d.store.GCDebt(),
		RetiredBlocks: d.store.FaultStats().RetiredBlocks,
		TotalBlocks:   int(d.store.Geometry().TotalBlocks()),
		LostPages:     d.store.LostPages(),
	}
}

// Write implements Device: the governor's verdict gates the write, a
// throttled state charges the configured delay, ErrNoSpace forces
// read-only instead of failing the run, and transient program faults are
// retried with backoff up to the configured bound.
func (d *healthDevice) Write(lpn ftl.LPN, h trace.Hash, now ssd.Time) (ssd.Time, error) {
	switch d.gov.Observe(d.sample(), now) {
	case health.Dead:
		d.gov.NoteRejectedWrite()
		return 0, fmt.Errorf("sim: write of LPN %d rejected: %w", lpn, health.ErrDeviceDead)
	case health.ReadOnly:
		d.gov.NoteRejectedWrite()
		return 0, fmt.Errorf("sim: write of LPN %d rejected: %w", lpn, health.ErrReadOnly)
	case health.Throttled:
		d.gov.NoteThrottled()
		now += d.cfg.ThrottleDelay
	}

	done, err := d.inner.Write(lpn, h, now)
	for attempt := 0; err != nil && errors.Is(err, ftl.ErrProgramFault) && attempt < d.cfg.MaxRetries; attempt++ {
		// A program fault that escaped the FTL's own retry-and-reland
		// machinery is transient from the host's point of view: back off
		// and resubmit against a fresh frontier.
		d.gov.NoteRetry()
		now += d.cfg.RetryBackoff
		done, err = d.inner.Write(lpn, h, now)
	}
	if err != nil && errors.Is(err, ftl.ErrNoSpace) {
		// Space exhaustion is a drive-level condition, not a request
		// error: pin read-only so the host keeps its data readable.
		d.gov.ForceReadOnly(now)
		d.gov.NoteRejectedWrite()
		return 0, fmt.Errorf("sim: write of LPN %d rejected: %w (%v)", lpn, health.ErrReadOnly, err)
	}
	return done, err
}

// Read implements Device: only the dead state refuses reads — a throttled
// or read-only drive still serves them at full speed.
func (d *healthDevice) Read(lpn ftl.LPN, now ssd.Time) (ssd.Time, error) {
	if d.gov.Observe(d.sample(), now) == health.Dead {
		d.gov.NoteRejectedRead()
		return 0, fmt.Errorf("sim: read of LPN %d rejected: %w", lpn, health.ErrDeviceDead)
	}
	return d.inner.Read(lpn, now)
}

// Metrics implements Device.
func (d *healthDevice) Metrics() DeviceMetrics { return d.inner.Metrics() }

// HealthStats exposes the governor's cumulative report for Result.
func (d *healthDevice) HealthStats() health.Stats { return d.gov.Stats() }

// Governor exposes the state machine for tests.
func (d *healthDevice) Governor() *health.Governor { return d.gov }

// Scrubber forwards to the inner device so patrol introspection still
// works under the governor.
func (d *healthDevice) Scrubber() *scrub.Scrubber {
	if sr, ok := d.inner.(interface{ Scrubber() *scrub.Scrubber }); ok {
		return sr.Scrubber()
	}
	return nil
}

// Bus forwards to the inner device for utilization reporting.
func (d *healthDevice) Bus() *ssd.Bus {
	if br, ok := d.inner.(interface{ Bus() *ssd.Bus }); ok {
		return br.Bus()
	}
	return nil
}

// Store forwards to the inner device for wear and capacity introspection.
func (d *healthDevice) Store() *ftl.Store { return StoreOf(d.inner) }

// Recover implements Recoverer: the inner device rebuilds, then the
// governor's power-cycle-local state resets — ladder position and the
// forced-read-only pin live in controller RAM. Durable damage (retired
// blocks, lost pages) survives in the store, so a genuinely dead drive
// re-enters dead on the first post-recovery sample.
func (d *healthDevice) Recover(opts RecoverOptions) (recovery.Report, error) {
	r, err := Recover(d.inner, opts)
	if err != nil {
		return r, err
	}
	d.gov.Reset()
	return r, nil
}

// ReadHash implements HashReader by forwarding.
func (d *healthDevice) ReadHash(lpn ftl.LPN) (trace.Hash, bool) {
	if hr, ok := d.inner.(HashReader); ok {
		return hr.ReadHash(lpn)
	}
	return trace.Hash{}, false
}
