package sim

import (
	"zombiessd/internal/core"
	"zombiessd/internal/ftl"
	"zombiessd/internal/sparse"
	"zombiessd/internal/ssd"
	"zombiessd/internal/telemetry"
	"zombiessd/internal/trace"
)

// poolHitRate computes a dead-value pool's lookup hit rate from its stats.
func poolHitRate(st core.PoolStats) float64 {
	if tot := st.Hits + st.Misses; tot > 0 {
		return float64(st.Hits) / float64(tot)
	}
	return 0
}

// dvpDevice is the paper's proposal on a normal (non-deduplicated) FTL: a
// dead-value pool indexes garbage pages by content hash, incoming writes
// are short-circuited on a match, and GC victim selection is
// popularity-aware (when Config.Store.PopularityWeight > 0).
type dvpDevice struct {
	cfg    Config
	bus    *ssd.Bus
	store  *ftl.Store
	mapper *ftl.Mapper
	pool   core.Pool
	ledger *core.Ledger
	lat    ssd.Latency
	steer  *streamSteer

	// content records the hash currently stored at each logical page, so
	// an update can hand the dying copy's hash to the pool. Sparse so a
	// paper-scale logical space only pays for touched chunks.
	content *sparse.Array[trace.Hash]

	tick core.Tick // write clock
	m    DeviceMetrics
}

func newDVPDevice(cfg Config, bus *ssd.Bus, store *ftl.Store) (*dvpDevice, error) {
	mapper, err := ftl.NewMapper(cfg.LogicalPages, cfg.Geometry.TotalPages())
	if err != nil {
		return nil, err
	}
	ledger := core.NewLedger()
	pool, err := buildPool(cfg, ledger)
	if err != nil {
		return nil, err
	}
	d := &dvpDevice{
		cfg:     cfg,
		bus:     bus,
		store:   store,
		mapper:  mapper,
		pool:    pool,
		ledger:  ledger,
		lat:     cfg.Latency,
		steer:   newStreamSteer(cfg.HotColdStreams, cfg.LogicalPages),
		content: sparse.New(cfg.LogicalPages, trace.Hash{}),
	}
	store.OnRelocate = mapper.Relocate
	store.OwnerOf = mapper.OwnerOf
	store.OnEraseGarbage = pool.Drop
	store.Scorer = pool
	// Through d so post-crash recovery can swap in a rebuilt mapper
	// without rewiring.
	store.LookupOf = func(lpn ftl.LPN) (ssd.PPN, bool) { return d.mapper.Lookup(lpn) }
	return d, nil
}

// Write implements Device: the paper's "Writes" and "Updates" events
// (Section IV-C) combined, since an overwrite is both.
func (d *dvpDevice) Write(lpn ftl.LPN, h trace.Hash, now ssd.Time) (ssd.Time, error) {
	d.m.HostWrites++
	d.tick++
	d.ledger.Bump(h)
	d.mapper.BumpPopularity(lpn)

	oldHash := d.content.Get(int64(lpn))

	// Every content-aware path first pays the hashing latency.
	hashDone := now + d.lat.Hash

	// The old PPN must be taken from Bind's return value, not from a
	// pre-program lookup: GC triggered by the program may relocate the old
	// page, and Bind always reports its current location.
	var done ssd.Time
	var old, bound ssd.PPN
	revived := false
	start := hashDone
	if ppn, ok := d.pool.Lookup(h, d.tick); ok {
		// Zombie revival — but only if the page's accumulated decay passes
		// the integrity gate: on an armed store VerifyRevive estimates the
		// RBER and pays a verify read; declined zombies (too decayed, or
		// the verify read itself went uncorrectable) fall through to a
		// normal program. Disarmed stores approve for free.
		vdone, ok, err := d.store.VerifyRevive(ppn, hashDone)
		if err != nil {
			return 0, wrapInterrupted(lpn, err)
		}
		if ok {
			// Flip the garbage page back to valid; only mapping tables
			// change, no program operation — so the binding goes to the
			// durable journal, not OOB.
			if err := d.store.Revalidate(ppn); err != nil {
				return 0, err
			}
			d.store.AppendBinding(lpn, ppn, true)
			old = d.mapper.Bind(lpn, ppn)
			bound = ppn
			d.m.Revived++
			done = vdone
			revived = true
		} else {
			start = vdone
		}
	}
	if !revived {
		// With hot/cold streams, pages overwritten quickly go to the hot
		// stream so short-lived data ages together.
		ppn, pdone, err := d.store.ProgramStream(start, d.steer.classify(lpn))
		if err != nil {
			return 0, wrapInterrupted(lpn, err)
		}
		d.store.StampOOB(ppn, lpn, h, false)
		old = d.mapper.Bind(lpn, ppn)
		bound = ppn
		done = pdone
	}

	// The update turned the old copy into garbage; offer it to the pool.
	// This happens after the lookup so a request cannot revive the page it
	// is itself killing.
	if old != ssd.InvalidPPN {
		if err := d.store.Invalidate(old); err != nil {
			return 0, err
		}
		d.pool.Insert(oldHash, old, d.tick)
	}
	d.content.Set(int64(lpn), h)
	done, err := d.store.MapWrite(lpn, bound, done)
	if err != nil {
		return 0, wrapInterrupted(lpn, err)
	}
	return done, nil
}

// Read implements Device.
func (d *dvpDevice) Read(lpn ftl.LPN, now ssd.Time) (ssd.Time, error) {
	d.m.HostReads++
	ppn, ok := d.mapper.Lookup(lpn)
	if !ok {
		d.m.UnmappedReads++
		return now, nil
	}
	now, err := d.store.MapRead(lpn, now)
	if err != nil {
		return 0, wrapInterrupted(lpn, err)
	}
	return absorbUncorrectable(d.store.Read(ppn, now))
}

// Metrics implements Device.
func (d *dvpDevice) Metrics() DeviceMetrics {
	d.m.GC = d.store.GC()
	d.m.Faults = d.store.FaultStats()
	d.m.Pool = d.pool.Stats()
	d.m.Dftl = d.store.DftlStats()
	busCounts(&d.m, d.bus)
	return d.m
}

// registerTelemetry adds the dead-value-pool gauges: the lookup hit rate
// the paper's Fig 9 write reduction hinges on, and the revival count.
func (d *dvpDevice) registerTelemetry(tel *telemetry.Telemetry) {
	tel.RegisterGauge("dvp_hit_rate",
		"dead-value pool lookup hit rate", nil,
		func(ssd.Time) float64 { return poolHitRate(d.pool.Stats()) })
	tel.RegisterGauge("dvp_revived_total",
		"host writes short-circuited by a zombie revival", nil,
		func(ssd.Time) float64 { return float64(d.m.Revived) })
}

// Bus exposes the flash timing model for utilization reporting.
func (d *dvpDevice) Bus() *ssd.Bus { return d.bus }

// Store exposes the physical store for wear and capacity introspection.
func (d *dvpDevice) Store() *ftl.Store { return d.store }
