package sim

import (
	"math"

	"zombiessd/internal/ssd"
)

// The QoS arbiter contract. At each decision point the engine hands the
// arbiter the set of ready tenants — queued work and spare queue depth —
// with the arrival time of each tenant's queue head, and the arbiter
// either picks one or declines with a wake time (a rate limiter whose
// buckets are all empty). Arbiters are pure functions of their own state,
// the ready set and simulated time: no real clocks, no map iteration, no
// randomness, so every policy is deterministic and replayable.
//
// Invariants the property tests pin (arbiter_test.go): WRR service shares
// converge to the configured weights under saturation; the token bucket
// never serves more than burst + rate·window requests in any window; no
// ready tenant starves; a returned wake time is strictly in the future.
type arbiter interface {
	// pick chooses the next tenant to dispatch among ready (ascending
	// tenant indices; never empty). heads[t] is the arrival time of tenant
	// t's oldest queued request. Returns tenant -1 and a wake time > now
	// when policy blocks every ready tenant.
	pick(now ssd.Time, ready []int, heads []ssd.Time) (int, ssd.Time)

	// served records that one request of tenant t was dispatched at now.
	served(t int, now ssd.Time)
}

// newArbiter builds the arbiter for kind over tenant configs.
func newArbiter(kind ArbiterKind, tenants []TenantConfig) arbiter {
	switch kind {
	case ArbWRR:
		w := make([]float64, len(tenants))
		for i, t := range tenants {
			w[i] = t.Weight
			if w[i] <= 0 {
				w[i] = 1
			}
		}
		return &wrrArbiter{weights: w, current: make([]float64, len(tenants))}
	case ArbTokenBucket:
		tb := &tokenBucketArbiter{
			ratePerUS: make([]float64, len(tenants)),
			burst:     make([]float64, len(tenants)),
			tokens:    make([]float64, len(tenants)),
			last:      make([]ssd.Time, len(tenants)),
		}
		for i, t := range tenants {
			tb.ratePerUS[i] = t.Rate / 1e6
			tb.burst[i] = t.Burst
			if tb.burst[i] <= 0 {
				tb.burst[i] = defaultBucketBurst
			}
			tb.tokens[i] = tb.burst[i] // buckets start full
		}
		return tb
	default:
		return fifoArbiter{}
	}
}

// defaultBucketBurst is the token-bucket capacity when a rate-limited
// tenant leaves burst unset.
const defaultBucketBurst = 8

// fifoArbiter serves the globally oldest queued request — arrival order
// across all tenants, exactly the single-submitter behaviour of the
// paper's trace runner. Ties break to the lower tenant index.
type fifoArbiter struct{}

func (fifoArbiter) pick(now ssd.Time, ready []int, heads []ssd.Time) (int, ssd.Time) {
	best := ready[0]
	for _, t := range ready[1:] {
		if heads[t] < heads[best] {
			best = t
		}
	}
	return best, 0
}

func (fifoArbiter) served(int, ssd.Time) {}

// wrrArbiter is smooth weighted round-robin: each decision adds every
// ready tenant's weight to its running credit, serves the largest credit,
// and subtracts the ready total from the winner. Under saturation the
// service shares converge to the weights, and a ready tenant's credit
// grows every round, so none starves. Ties break to the lower index.
type wrrArbiter struct {
	weights []float64
	current []float64
}

func (a *wrrArbiter) pick(now ssd.Time, ready []int, heads []ssd.Time) (int, ssd.Time) {
	var total float64
	best := -1
	for _, t := range ready {
		a.current[t] += a.weights[t]
		total += a.weights[t]
		if best == -1 || a.current[t] > a.current[best] {
			best = t
		}
	}
	a.current[best] -= total
	return best, 0
}

func (a *wrrArbiter) served(int, ssd.Time) {}

// tokenBucketArbiter rate-limits each tenant: tokens refill at Rate
// requests per simulated second up to the burst capacity, one token is
// spent per dispatch, and a tenant is eligible only while it holds a full
// token (rate 0 = unlimited). Among eligible tenants the oldest queue
// head is served (FIFO), so the policy shapes throughput without
// reordering within the admitted rate. When every ready tenant's bucket
// is empty the arbiter declines and reports the earliest refill instant.
type tokenBucketArbiter struct {
	ratePerUS []float64
	burst     []float64
	tokens    []float64
	last      []ssd.Time
}

func (a *tokenBucketArbiter) refill(t int, now ssd.Time) {
	if now > a.last[t] {
		a.tokens[t] += a.ratePerUS[t] * float64(now-a.last[t])
		if a.tokens[t] > a.burst[t] {
			a.tokens[t] = a.burst[t]
		}
		a.last[t] = now
	}
}

func (a *tokenBucketArbiter) pick(now ssd.Time, ready []int, heads []ssd.Time) (int, ssd.Time) {
	best := -1
	var wake ssd.Time
	for _, t := range ready {
		a.refill(t, now)
		if a.ratePerUS[t] == 0 || a.tokens[t] >= 1 {
			if best == -1 || heads[t] < heads[best] {
				best = t
			}
			continue
		}
		need := (1 - a.tokens[t]) / a.ratePerUS[t]
		w := now + ssd.Time(math.Ceil(need))
		if w <= now {
			w = now + 1
		}
		if wake == 0 || w < wake {
			wake = w
		}
	}
	if best == -1 {
		return -1, wake
	}
	return best, 0
}

func (a *tokenBucketArbiter) served(t int, now ssd.Time) {
	if a.ratePerUS[t] > 0 {
		a.tokens[t]--
	}
}
