package sim

import (
	"zombiessd/internal/ftl"
	"zombiessd/internal/recovery"
	"zombiessd/internal/scrub"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// preemptDevice interposes the partial garbage collector in front of any
// device: every host request first gives the store one idle window of
// partial GC at the request's arrival time — at most k valid-page
// migrations (plus one erase), stamped at time 0 so the bus lands them in
// the gap since each chip last went idle, exactly like the scrub patrol's
// Tick. The wrapper is outermost (outside the scrubber too): the partial
// collector must see the true host clock, and its migrations must be
// stamped before the request claims the chip timeline.
type preemptDevice struct {
	inner Device
	store *ftl.Store
}

// Write implements Device.
func (d *preemptDevice) Write(lpn ftl.LPN, h trace.Hash, now ssd.Time) (ssd.Time, error) {
	if err := d.store.PartialGCTick(now); err != nil {
		return 0, wrapInterrupted(lpn, err)
	}
	return d.inner.Write(lpn, h, now)
}

// Read implements Device.
func (d *preemptDevice) Read(lpn ftl.LPN, now ssd.Time) (ssd.Time, error) {
	if err := d.store.PartialGCTick(now); err != nil {
		return 0, err
	}
	return d.inner.Read(lpn, now)
}

// Metrics implements Device.
func (d *preemptDevice) Metrics() DeviceMetrics { return d.inner.Metrics() }

// Scrubber forwards to the inner device so patrol introspection still
// works when both wrappers are stacked.
func (d *preemptDevice) Scrubber() *scrub.Scrubber {
	if sr, ok := d.inner.(interface{ Scrubber() *scrub.Scrubber }); ok {
		return sr.Scrubber()
	}
	return nil
}

// Bus forwards to the inner device for utilization reporting.
func (d *preemptDevice) Bus() *ssd.Bus {
	if br, ok := d.inner.(interface{ Bus() *ssd.Bus }); ok {
		return br.Bus()
	}
	return nil
}

// Store forwards to the inner device for wear and capacity introspection.
func (d *preemptDevice) Store() *ftl.Store { return StoreOf(d.inner) }

// Recover implements Recoverer by forwarding; drain positions do not
// survive power loss (Rebuild resets them), so partial GC simply restarts
// its victim selection after recovery.
func (d *preemptDevice) Recover(opts RecoverOptions) (recovery.Report, error) {
	return Recover(d.inner, opts)
}

// ReadHash implements HashReader by forwarding.
func (d *preemptDevice) ReadHash(lpn ftl.LPN) (trace.Hash, bool) {
	if hr, ok := d.inner.(HashReader); ok {
		return hr.ReadHash(lpn)
	}
	return trace.Hash{}, false
}
