package sim

import (
	"zombiessd/internal/ftl"
	"zombiessd/internal/ssd"
	"zombiessd/internal/telemetry"
	"zombiessd/internal/trace"
	"zombiessd/internal/wbuf"
)

// bufferLatency is the RAM acknowledgement time of a buffered write or a
// buffer read hit.
const bufferLatency = 2 * ssd.Microsecond

// bufferedDevice interposes a DRAM write-back buffer (internal/wbuf) in
// front of any device: host writes are acknowledged from RAM, dirty pages
// reach the inner device only on eviction, and reads of dirty pages are
// served from RAM. It models the "aggressive caching" software layer of
// Section VII, which absorbs some duplicate writes but — as the paper
// argues and BenchmarkAblationWriteBuffer measures — not the dead-value
// pool's share.
type bufferedDevice struct {
	inner Device
	buf   *wbuf.Buffer
	tel   *telemetry.Telemetry

	// onFlush, when set, observes every page that durably reaches the
	// inner device (the crash oracle's "acknowledged" boundary: buffered
	// pages are volatile until evicted to flash).
	onFlush func(ftl.LPN, trace.Hash)

	hostWrites, hostReads int64
}

func newBufferedDevice(inner Device, pages int, tel *telemetry.Telemetry) (*bufferedDevice, error) {
	buf, err := wbuf.New(pages)
	if err != nil {
		return nil, err
	}
	return &bufferedDevice{inner: inner, buf: buf, tel: tel}, nil
}

// Write implements Device: acknowledge from RAM, flush the evicted page (if
// any) to the inner device in the background of this request. The flush is
// tagged OriginFlush: it runs off the acknowledgement path, so its flash
// cost must not be attributed to this request's critical path.
func (d *bufferedDevice) Write(lpn ftl.LPN, h trace.Hash, now ssd.Time) (ssd.Time, error) {
	d.hostWrites++
	evLPN, evHash, evicted := d.buf.Put(lpn, h)
	if evicted {
		prev := d.tel.EnterOrigin(telemetry.OriginFlush)
		_, err := d.inner.Write(evLPN, evHash, now)
		d.tel.ExitOrigin(prev)
		if err != nil {
			return 0, err
		}
		if d.onFlush != nil {
			d.onFlush(evLPN, evHash)
		}
	}
	return now + bufferLatency, nil
}

// SetFlushHook registers fn to run after each page durably reaches the
// inner device. The crash-consistency oracle uses it to track which writes
// are acknowledged past the volatile DRAM buffer.
func (d *bufferedDevice) SetFlushHook(fn func(ftl.LPN, trace.Hash)) { d.onFlush = fn }

// Read implements Device: dirty pages come from RAM, the rest from flash.
func (d *bufferedDevice) Read(lpn ftl.LPN, now ssd.Time) (ssd.Time, error) {
	d.hostReads++
	if _, ok := d.buf.Get(lpn); ok {
		return now + bufferLatency, nil
	}
	return d.inner.Read(lpn, now)
}

// Bus exposes the inner device's flash timing model, when it has one.
func (d *bufferedDevice) Bus() *ssd.Bus {
	if br, ok := d.inner.(interface{ Bus() *ssd.Bus }); ok {
		return br.Bus()
	}
	return nil
}

// Store exposes the inner device's physical store, when it has one.
func (d *bufferedDevice) Store() *ftl.Store {
	if sr, ok := d.inner.(interface{ Store() *ftl.Store }); ok {
		return sr.Store()
	}
	return nil
}

// Metrics implements Device: the inner device's flash accounting with the
// wrapper's host-visible request counts and the buffer's absorption.
func (d *bufferedDevice) Metrics() DeviceMetrics {
	m := d.inner.Metrics()
	m.HostWrites = d.hostWrites
	m.HostReads = d.hostReads
	m.BufferAbsorbed = d.buf.Stats().Coalesced + int64(d.buf.Len())
	m.BufferReadHits = d.buf.Stats().ReadHits
	return m
}
