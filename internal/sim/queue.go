package sim

import "zombiessd/internal/ssd"

// This file holds the two queue structures of the multi-queue host
// engine: the per-tenant submission queue (FIFO with queue-depth
// admission control, the NVMe SQ analogue) and the global completion
// heap (the engine's event clock for outstanding requests, the CQ
// analogue). Both are plain deterministic data structures — no maps, no
// time sources — so N-tenant runs are a pure function of (seeds, config).

// subQueue is one tenant's submission queue: admitted request indices in
// arrival order. depth bounds the tenant's outstanding requests
// (queued here plus in flight on the device); 0 means unlimited.
type subQueue struct {
	items    []int // indices into the tenant's trace, FIFO
	head     int   // first live element of items
	depth    int
	rejected int64
	maxQueue int // high-water mark of queued (not yet dispatched) requests
}

// tryAdmit appends record index i if the tenant's outstanding count
// (queued + inflight) is under the depth bound; otherwise the request is
// shed and counted. FIFO order within a tenant is structural: admission
// happens in arrival order and pop always returns the oldest entry.
func (q *subQueue) tryAdmit(i, inflight int) bool {
	if q.depth > 0 && q.len()+inflight >= q.depth {
		q.rejected++
		return false
	}
	q.items = append(q.items, i)
	if n := q.len(); n > q.maxQueue {
		q.maxQueue = n
	}
	return true
}

// len returns how many admitted requests await dispatch.
func (q *subQueue) len() int { return len(q.items) - q.head }

// empty reports whether no admitted request awaits dispatch.
func (q *subQueue) empty() bool { return q.len() == 0 }

// peek returns the oldest queued record index. Caller checks empty.
func (q *subQueue) peek() int { return q.items[q.head] }

// pop removes and returns the oldest queued record index, compacting the
// backing slice once the dead prefix dominates.
func (q *subQueue) pop() int {
	v := q.items[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v
}

// completion is one in-flight request's completion event.
type completion struct {
	done   ssd.Time
	tenant int
	seq    int64 // dispatch order, the deterministic tie-break
}

// cqueue is a binary min-heap of completions ordered by (done, seq): the
// engine pops them as simulated time passes to retire in-flight requests.
// The seq tie-break makes pop order — and therefore every downstream
// decision — independent of heap internals when completions collide.
type cqueue struct {
	h []completion
}

func (c *cqueue) len() int { return len(c.h) }

func (c *cqueue) less(i, j int) bool {
	if c.h[i].done != c.h[j].done {
		return c.h[i].done < c.h[j].done
	}
	return c.h[i].seq < c.h[j].seq
}

// push adds one completion event.
func (c *cqueue) push(e completion) {
	c.h = append(c.h, e)
	i := len(c.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			break
		}
		c.h[i], c.h[parent] = c.h[parent], c.h[i]
		i = parent
	}
}

// min returns the earliest completion. Caller checks len.
func (c *cqueue) min() completion { return c.h[0] }

// pop removes and returns the earliest completion. Caller checks len.
func (c *cqueue) pop() completion {
	top := c.h[0]
	last := len(c.h) - 1
	c.h[0] = c.h[last]
	c.h = c.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(c.h) && c.less(l, smallest) {
			smallest = l
		}
		if r < len(c.h) && c.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		c.h[i], c.h[smallest] = c.h[smallest], c.h[i]
		i = smallest
	}
}
