package sim

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"zombiessd/internal/fault"
	"zombiessd/internal/ftl"
	"zombiessd/internal/recovery"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// testStoreOf reaches the flash store of any device flavour.
func testStoreOf(t *testing.T, dev Device) *ftl.Store {
	t.Helper()
	switch d := dev.(type) {
	case *baselineDevice:
		return d.store
	case *dvpDevice:
		return d.store
	case *dedupDevice:
		return d.store
	case *lxDevice:
		return d.store
	case *bufferedDevice:
		return testStoreOf(t, d.inner)
	}
	t.Fatalf("no store accessor for device %T", dev)
	return nil
}

func testBusOps(t *testing.T, dev Device) int64 {
	t.Helper()
	br, ok := dev.(interface{ Bus() *ssd.Bus })
	if !ok || br.Bus() == nil {
		t.Fatal("device has no bus")
	}
	r, p, e := br.Bus().Counts()
	return r + p + e
}

// replayWithCrash preconditions the footprint, replays recs with the
// integrity oracle attached, and — when the armed power loss fires —
// recovers, verifies, and finishes the trace. crashAt 0 never fires (the
// pilot). Any oracle violation fails the test.
func replayWithCrash(t *testing.T, cfg Config, recs []trace.Record, footprint, crashAt int64) (dev Device, opsPre int64, crashed bool) {
	t.Helper()
	cfg.Faults.CrashAtOp = crashAt
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shadow, ackOnWrite := AttachShadow(dev)
	hr, ok := dev.(HashReader)
	if !ok {
		t.Fatalf("device %T lacks ReadHash", dev)
	}
	var end ssd.Time
	for lpn := int64(0); lpn < footprint; lpn++ {
		h := PreconditionHash(lpn)
		done, err := dev.Write(ftl.LPN(lpn), h, 0)
		if err != nil {
			t.Fatalf("precondition write %d: %v", lpn, err)
		}
		shadow.Observe(ftl.LPN(lpn), h)
		if ackOnWrite {
			shadow.Ack(ftl.LPN(lpn), h)
		}
		if done > end {
			end = done
		}
	}
	opsPre = testBusOps(t, dev)
	shift := end + ssd.Millisecond
	for i, rec := range recs {
		arrival := shift + ssd.Time(rec.Time)
		lpn := ftl.LPN(rec.LBA)
		var err error
		switch rec.Op {
		case trace.OpWrite:
			_, err = dev.Write(lpn, rec.Hash, arrival)
			if err == nil {
				shadow.Observe(lpn, rec.Hash)
				if ackOnWrite {
					shadow.Ack(lpn, rec.Hash)
				}
			}
		case trace.OpRead:
			_, err = dev.Read(lpn, arrival)
		}
		if err == nil {
			continue
		}
		if crashed || !errors.Is(err, fault.ErrPowerLoss) {
			t.Fatalf("record %d: %v", i, err)
		}
		crashed = true
		var iw *InterruptedWrite
		if errors.As(err, &iw) {
			shadow.Exempt(iw.LPN)
		}
		if _, err := Recover(dev, RecoverOptions{}); err != nil {
			t.Fatalf("recovery at record %d: %v", i, err)
		}
		if v := shadow.Verify(hr); len(v) > 0 {
			t.Fatalf("%d oracle violations after recovery, first: %v", len(v), v[0])
		}
	}
	if v := shadow.Verify(hr); len(v) > 0 {
		t.Fatalf("%d oracle violations after finishing the trace, first: %v", len(v), v[0])
	}
	return dev, opsPre, crashed
}

// TestCrashRecoverEveryKind cuts power at three points of every device
// flavour's life — landing mid-write, mid-GC-relocation or mid-erase as
// the op index falls — and requires recovery plus a clean oracle pass.
func TestCrashRecoverEveryKind(t *testing.T) {
	recs := redundantTrace(8000)
	kinds := []struct {
		name string
		cfg  Config
	}{
		{"baseline", testConfig(KindBaseline, testFootprint)},
		{"dvp", testConfig(KindDVP, testFootprint)},
		{"dvp+dedup", testConfig(KindDVPDedup, testFootprint)},
		{"lx", testConfig(KindLX, testFootprint)},
	}
	buffered := testConfig(KindDVP, testFootprint)
	buffered.WriteBufferPages = 64
	kinds = append(kinds, struct {
		name string
		cfg  Config
	}{"buffered", buffered})

	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			dev, opsPre, _ := replayWithCrash(t, k.cfg, recs, testFootprint, 0)
			window := testBusOps(t, dev) - opsPre
			if window <= 0 {
				t.Fatal("pilot issued no flash ops after preconditioning")
			}
			for _, q := range []int64{1, 2, 3} {
				crashAt := opsPre + q*window/4
				_, _, crashed := replayWithCrash(t, k.cfg, recs, testFootprint, crashAt)
				if !crashed {
					t.Errorf("power loss at op %d never fired", crashAt)
				}
			}
		})
	}
}

// TestCrashRecoverDeterminism requires recovery to be a pure function of
// the workload and crash point: two identical crashed runs must end with
// byte-identical durable state (OOB + journal snapshot), identical
// recovered content for every logical page, and identical metrics.
func TestCrashRecoverDeterminism(t *testing.T) {
	cfg := testConfig(KindDVP, testFootprint)
	recs := redundantTrace(8000)
	dev, opsPre, _ := replayWithCrash(t, cfg, recs, testFootprint, 0)
	crashAt := opsPre + (testBusOps(t, dev)-opsPre)/2

	run := func() ([]byte, []trace.Hash, DeviceMetrics) {
		dev, _, crashed := replayWithCrash(t, cfg, recs, testFootprint, crashAt)
		if !crashed {
			t.Fatalf("power loss at op %d never fired", crashAt)
		}
		snap := recovery.SnapshotOf(testStoreOf(t, dev)).Encode()
		hr := dev.(HashReader)
		hashes := make([]trace.Hash, testFootprint)
		for l := range hashes {
			hashes[l], _ = hr.ReadHash(ftl.LPN(l))
		}
		return snap, hashes, dev.Metrics()
	}
	snap1, hashes1, m1 := run()
	snap2, hashes2, m2 := run()
	if !bytes.Equal(snap1, snap2) {
		t.Error("durable snapshots differ across identical crashed runs")
	}
	if !reflect.DeepEqual(hashes1, hashes2) {
		t.Error("recovered page contents differ across identical crashed runs")
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Errorf("metrics differ across identical crashed runs:\n %+v\n %+v", m1, m2)
	}
}
