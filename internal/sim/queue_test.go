package sim

import (
	"math/rand"
	"testing"

	"zombiessd/internal/ssd"
)

func TestSubQueueDepthEnforcement(t *testing.T) {
	cases := []struct {
		name         string
		depth        int
		inflight     int
		offers       int
		wantAdmitted int
		wantRejected int64
	}{
		{"unlimited", 0, 100, 50, 50, 0},
		{"depth bounds queued", 4, 0, 10, 4, 6},
		{"inflight counts against depth", 4, 3, 10, 1, 9},
		{"inflight at depth sheds everything", 4, 4, 10, 0, 10},
		{"inflight beyond depth sheds everything", 2, 5, 10, 0, 10},
		{"depth one", 1, 0, 3, 1, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q := subQueue{depth: c.depth}
			admitted := 0
			for i := 0; i < c.offers; i++ {
				if q.tryAdmit(i, c.inflight) {
					admitted++
				}
			}
			if admitted != c.wantAdmitted {
				t.Errorf("admitted %d, want %d", admitted, c.wantAdmitted)
			}
			if q.len() != c.wantAdmitted {
				t.Errorf("queued %d, want %d", q.len(), c.wantAdmitted)
			}
			if q.rejected != c.wantRejected {
				t.Errorf("rejected %d, want %d", q.rejected, c.wantRejected)
			}
		})
	}
}

func TestSubQueueDepthFreesOnPop(t *testing.T) {
	q := subQueue{depth: 2}
	if !q.tryAdmit(0, 0) || !q.tryAdmit(1, 0) {
		t.Fatal("first two admissions should succeed")
	}
	if q.tryAdmit(2, 0) {
		t.Fatal("third admission should be shed at depth 2")
	}
	q.pop()
	if !q.tryAdmit(3, 0) {
		t.Fatal("admission should succeed again after a pop freed a slot")
	}
	if q.rejected != 1 {
		t.Fatalf("rejected = %d, want 1", q.rejected)
	}
}

// TestSubQueueFIFOOrder drains the queue through interleaved admissions
// and pops large enough to trigger slice compaction, and checks strict
// FIFO within the tenant throughout.
func TestSubQueueFIFOOrder(t *testing.T) {
	var q subQueue // unlimited
	rng := rand.New(rand.NewSource(7))
	next, expect := 0, 0
	for step := 0; step < 10_000; step++ {
		if q.empty() || rng.Intn(3) > 0 {
			q.tryAdmit(next, 0)
			next++
		} else {
			if got := q.peek(); got != expect {
				t.Fatalf("peek = %d, want %d", got, expect)
			}
			if got := q.pop(); got != expect {
				t.Fatalf("pop = %d, want %d", got, expect)
			}
			expect++
		}
	}
	for !q.empty() {
		if got := q.pop(); got != expect {
			t.Fatalf("drain pop = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d items, admitted %d", expect, next)
	}
}

func TestSubQueueMaxQueueHighWater(t *testing.T) {
	var q subQueue
	for i := 0; i < 5; i++ {
		q.tryAdmit(i, 0)
	}
	q.pop()
	q.pop()
	q.tryAdmit(5, 0)
	if q.maxQueue != 5 {
		t.Fatalf("maxQueue = %d, want 5", q.maxQueue)
	}
}

// TestCompletionHeapMonotone pushes pseudo-random completions (with
// deliberate done-time collisions) and checks that pops come out in
// nondecreasing (done, seq) order — the engine's determinism hinges on
// collisions resolving by dispatch sequence, not heap internals.
func TestCompletionHeapMonotone(t *testing.T) {
	var cq cqueue
	rng := rand.New(rand.NewSource(11))
	var seq int64
	for i := 0; i < 5000; i++ {
		seq++
		cq.push(completion{
			done:   ssd.Time(rng.Intn(200)), // dense range forces ties
			tenant: rng.Intn(8),
			seq:    seq,
		})
		// Occasionally pop mid-stream, as the engine does.
		if rng.Intn(4) == 0 && cq.len() > 1 {
			a, b := cq.pop(), cq.min()
			if b.done < a.done || (b.done == a.done && b.seq < a.seq) {
				t.Fatalf("heap order violated mid-stream: %+v then %+v", a, b)
			}
		}
	}
	prev := completion{done: -1}
	for cq.len() > 0 {
		e := cq.pop()
		if e.done < prev.done || (e.done == prev.done && e.seq <= prev.seq) {
			t.Fatalf("pop order violated: %+v after %+v", e, prev)
		}
		prev = e
	}
}
