package sim

import "zombiessd/internal/ftl"

// streamSteer implements recency-based hot/cold classification for
// multi-stream devices: a logical page overwritten within half the address
// space's worth of writes since its previous write counts as hot
// (short-lived). Recency rather than cumulative popularity: heat drifts,
// and stale counters missteer placement.
type streamSteer struct {
	lastWrite []int64
	hotWindow int64
	tick      int64
}

// newStreamSteer returns a steer for logicalPages pages, or nil when
// steering is disabled.
func newStreamSteer(enabled bool, logicalPages int64) *streamSteer {
	if !enabled {
		return nil
	}
	s := &streamSteer{
		lastWrite: make([]int64, logicalPages),
		hotWindow: logicalPages / 2,
	}
	if s.hotWindow < 1 {
		s.hotWindow = 1
	}
	for i := range s.lastWrite {
		s.lastWrite[i] = -1
	}
	return s
}

// classify returns the write stream for lpn (0 cold, 1 hot) and records
// the write. Safe to call on a nil steer (always stream 0).
func (s *streamSteer) classify(lpn ftl.LPN) int {
	if s == nil {
		return 0
	}
	s.tick++
	stream := 0
	if last := s.lastWrite[lpn]; last >= 0 && s.tick-last < s.hotWindow {
		stream = 1
	}
	s.lastWrite[lpn] = s.tick
	return stream
}
