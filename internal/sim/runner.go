package sim

import (
	"fmt"

	"zombiessd/internal/ftl"
	"zombiessd/internal/ssd"
	"zombiessd/internal/stats"
	"zombiessd/internal/telemetry"
	"zombiessd/internal/trace"
)

// RunOptions configures a trace run.
type RunOptions struct {
	// PreconditionPages > 0 fills logical pages [0, PreconditionPages)
	// with unique content before the timed run, so the trace executes on a
	// drive whose footprint is already resident — updates invalidate real
	// pages and GC is active from the start, as on a steady-state device.
	// Preconditioning is excluded from all reported metrics and latencies.
	PreconditionPages int64

	// LogicalPages bounds the trace's LBAs; requests beyond it are
	// rejected. Required (the paper's traces address a fixed space).
	LogicalPages int64
}

// Result is the outcome of one trace run on one device.
type Result struct {
	Metrics  DeviceMetrics
	All      stats.Summary // latency over every request
	Reads    stats.Summary
	Writes   stats.Summary
	Makespan ssd.Time // completion time of the last request minus trace start

	// MeanChipUtil and MaxChipUtil are the per-chip busy fractions over the
	// whole run (preconditioning included); a mean near 1 flags a saturated
	// drive whose latencies are queueing artifacts.
	MeanChipUtil, MaxChipUtil float64
}

// preconditionValueBase offsets preconditioning content IDs far above any
// workload-generated value ID, so the fill never aliases trace values.
const preconditionValueBase = uint64(1) << 48

// PreconditionHash returns the content the preconditioning fill writes at
// lpn. External replay loops (e.g. the crash sweep) reuse it so their
// fills stay bit-identical to Run's.
func PreconditionHash(lpn int64) trace.Hash {
	return trace.HashOfValue(preconditionValueBase + uint64(lpn))
}

// Run replays recs against dev in arrival order and returns metrics and
// latency summaries. Request arrival times come from the trace; queuing
// shows up when a request's completion lags its arrival by more than the
// raw operation latency.
func Run(dev Device, recs []trace.Record, opts RunOptions) (Result, error) {
	if opts.LogicalPages <= 0 {
		return Result{}, fmt.Errorf("sim: RunOptions.LogicalPages must be positive")
	}
	if opts.PreconditionPages > opts.LogicalPages {
		return Result{}, fmt.Errorf("sim: precondition pages %d exceed logical pages %d",
			opts.PreconditionPages, opts.LogicalPages)
	}

	tel := telemetryOf(dev)

	// Untimed preconditioning fill, tagged so its flash traffic is never
	// attributed to a host request or charted as steady-state activity.
	var shift ssd.Time
	if opts.PreconditionPages > 0 {
		prevOrigin := tel.EnterOrigin(telemetry.OriginPrecond)
		var end ssd.Time
		for lpn := int64(0); lpn < opts.PreconditionPages; lpn++ {
			done, err := dev.Write(lpnOf(lpn), PreconditionHash(lpn), 0)
			if err != nil {
				tel.ExitOrigin(prevOrigin)
				return Result{}, fmt.Errorf("sim: precondition write %d: %w", lpn, err)
			}
			if done > end {
				end = done
			}
		}
		tel.ExitOrigin(prevOrigin)
		shift = end + ssd.Millisecond
	}
	baseline := dev.Metrics()

	var all, reads, writes stats.Histogram
	var res Result
	for i, rec := range recs {
		if rec.LBA >= uint64(opts.LogicalPages) {
			return Result{}, fmt.Errorf("sim: record %d LBA %d outside logical space %d",
				i, rec.LBA, opts.LogicalPages)
		}
		arrival := shift + ssd.Time(rec.Time)
		tel.Sample(arrival)
		var done ssd.Time
		var err error
		switch rec.Op {
		case trace.OpWrite:
			tel.BeginRequest(telemetry.ReqWrite, arrival)
			done, err = dev.Write(lpnOf(int64(rec.LBA)), rec.Hash, arrival)
		case trace.OpRead:
			tel.BeginRequest(telemetry.ReqRead, arrival)
			done, err = dev.Read(lpnOf(int64(rec.LBA)), arrival)
		default:
			return Result{}, fmt.Errorf("sim: record %d has unknown op %v", i, rec.Op)
		}
		if err != nil {
			return Result{}, fmt.Errorf("sim: record %d: %w", i, err)
		}
		tel.EndRequest(done)
		lat := int64(done - arrival)
		all.Add(lat)
		if rec.Op == trace.OpWrite {
			writes.Add(lat)
		} else {
			reads.Add(lat)
		}
		if end := done - shift; end > res.Makespan {
			res.Makespan = end
		}
	}
	res.Metrics = dev.Metrics().Sub(baseline)
	res.All = all.Summarize()
	res.Reads = reads.Summarize()
	res.Writes = writes.Summarize()
	if br, ok := dev.(interface{ Bus() *ssd.Bus }); ok {
		if bus := br.Bus(); bus != nil {
			res.MeanChipUtil, res.MaxChipUtil = bus.Utilization(shift + res.Makespan)
		}
	}
	return res, nil
}

func lpnOf(v int64) ftl.LPN { return ftl.LPN(v) }
