package sim

import (
	"fmt"

	"zombiessd/internal/ftl"
	"zombiessd/internal/health"
	"zombiessd/internal/ssd"
	"zombiessd/internal/stats"
	"zombiessd/internal/trace"
)

// RunOptions configures a trace run.
type RunOptions struct {
	// PreconditionPages > 0 fills logical pages [0, PreconditionPages)
	// with unique content before the timed run, so the trace executes on a
	// drive whose footprint is already resident — updates invalidate real
	// pages and GC is active from the start, as on a steady-state device.
	// Preconditioning is excluded from all reported metrics and latencies.
	PreconditionPages int64

	// LogicalPages bounds the trace's LBAs; requests beyond it are
	// rejected. Required (the paper's traces address a fixed space).
	LogicalPages int64
}

// Result is the outcome of one trace run on one device.
type Result struct {
	Metrics  DeviceMetrics
	All      stats.Summary // latency over every request
	Reads    stats.Summary
	Writes   stats.Summary
	Makespan ssd.Time // completion time of the last request minus trace start

	// MeanChipUtil and MaxChipUtil are the per-chip busy fractions over the
	// whole run (preconditioning included); a mean near 1 flags a saturated
	// drive whose latencies are queueing artifacts.
	MeanChipUtil, MaxChipUtil float64

	// Health is the device health governor's report (zero when the
	// governor is disabled): final ladder state, transitions, throttled
	// and rejected operations, host-layer retries.
	Health health.Stats
}

// preconditionValueBase offsets preconditioning content IDs far above any
// workload-generated value ID, so the fill never aliases trace values.
const preconditionValueBase = uint64(1) << 48

// PreconditionHash returns the content the preconditioning fill writes at
// lpn. External replay loops (e.g. the crash sweep) reuse it so their
// fills stay bit-identical to Run's.
func PreconditionHash(lpn int64) trace.Hash {
	return trace.HashOfValue(preconditionValueBase + uint64(lpn))
}

// Run replays recs against dev in arrival order and returns metrics and
// latency summaries. Request arrival times come from the trace; queuing
// shows up when a request's completion lags its arrival by more than the
// raw operation latency.
//
// Run is the degenerate case of the multi-queue host engine (engine.go):
// one tenant stream, the FIFO arbiter, unlimited queue depth. With a
// monotone trace the engine dispatches every request at its own arrival
// instant, so results stay bit-identical to the pre-engine runner —
// pinned by TestNoTenantBitIdentity.
func Run(dev Device, recs []trace.Record, opts RunOptions) (Result, error) {
	if opts.LogicalPages <= 0 {
		return Result{}, fmt.Errorf("sim: RunOptions.LogicalPages must be positive")
	}
	if opts.PreconditionPages > opts.LogicalPages {
		return Result{}, fmt.Errorf("sim: precondition pages %d exceed logical pages %d",
			opts.PreconditionPages, opts.LogicalPages)
	}
	mr, err := RunTenants(dev, []TenantTrace{{
		Cfg:       TenantConfig{Name: "host", Weight: 1},
		Recs:      recs,
		Footprint: opts.LogicalPages,
	}}, EngineOptions{
		Arbiter:           ArbFIFO,
		PreconditionPages: opts.PreconditionPages,
		LogicalPages:      opts.LogicalPages,
	})
	if err != nil {
		return Result{}, err
	}
	return mr.Result, nil
}

func lpnOf(v int64) ftl.LPN { return ftl.LPN(v) }
