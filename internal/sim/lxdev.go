package sim

import (
	"zombiessd/internal/ftl"
	"zombiessd/internal/lxssd"
	"zombiessd/internal/sparse"
	"zombiessd/internal/ssd"
	"zombiessd/internal/telemetry"
	"zombiessd/internal/trace"
)

// lxDevice is the LX-SSD prior-work system: garbage-page recycling with
// address-recency LRU and read+write popularity, on a plain FTL with
// greedy (popularity-unaware) GC.
type lxDevice struct {
	cfg    Config
	bus    *ssd.Bus
	store  *ftl.Store
	mapper *ftl.Mapper
	pool   *lxssd.Pool
	lat    ssd.Latency

	content *sparse.Array[trace.Hash]
	m       DeviceMetrics
}

func newLXDevice(cfg Config, bus *ssd.Bus, store *ftl.Store) (*lxDevice, error) {
	mapper, err := ftl.NewMapper(cfg.LogicalPages, cfg.Geometry.TotalPages())
	if err != nil {
		return nil, err
	}
	pool, err := lxssd.New(cfg.LX)
	if err != nil {
		return nil, err
	}
	d := &lxDevice{
		cfg:     cfg,
		bus:     bus,
		store:   store,
		mapper:  mapper,
		pool:    pool,
		lat:     cfg.Latency,
		content: sparse.New(cfg.LogicalPages, trace.Hash{}),
	}
	store.OnRelocate = mapper.Relocate
	store.OwnerOf = mapper.OwnerOf
	store.OnEraseGarbage = d.pool.Drop
	// Through d so post-crash recovery can swap in a rebuilt mapper
	// without rewiring.
	store.LookupOf = func(lpn ftl.LPN) (ssd.PPN, bool) { return d.mapper.Lookup(lpn) }
	return d, nil
}

// Write implements Device.
func (d *lxDevice) Write(lpn ftl.LPN, h trace.Hash, now ssd.Time) (ssd.Time, error) {
	d.m.HostWrites++
	d.pool.RecordAccess(h, uint64(lpn))

	oldHash := d.content.Get(int64(lpn))
	hashDone := now + d.lat.Hash

	// As in dvpDevice, the old PPN comes from Bind so GC relocations
	// triggered by the program are observed.
	var done ssd.Time
	var old, bound ssd.PPN
	revived := false
	start := hashDone
	if ppn, ok := d.pool.Lookup(h); ok {
		// Same integrity gate as dvpDevice: a recycled page must pass the
		// RBER estimate and a verify read before it is trusted again.
		vdone, ok, err := d.store.VerifyRevive(ppn, hashDone)
		if err != nil {
			return 0, wrapInterrupted(lpn, err)
		}
		if ok {
			if err := d.store.Revalidate(ppn); err != nil {
				return 0, err
			}
			d.store.AppendBinding(lpn, ppn, true)
			old = d.mapper.Bind(lpn, ppn)
			bound = ppn
			d.m.Revived++
			done = vdone
			revived = true
		} else {
			start = vdone
		}
	}
	if !revived {
		ppn, pdone, err := d.store.Program(start)
		if err != nil {
			return 0, wrapInterrupted(lpn, err)
		}
		d.store.StampOOB(ppn, lpn, h, false)
		old = d.mapper.Bind(lpn, ppn)
		bound = ppn
		done = pdone
	}
	if old != ssd.InvalidPPN {
		if err := d.store.Invalidate(old); err != nil {
			return 0, err
		}
		d.pool.Insert(oldHash, old, uint64(lpn))
	}
	d.content.Set(int64(lpn), h)
	done, err := d.store.MapWrite(lpn, bound, done)
	if err != nil {
		return 0, wrapInterrupted(lpn, err)
	}
	return done, nil
}

// Read implements Device. Reads refresh the recycler's address recency and
// popularity — LX-SSD's read-polluted accounting.
func (d *lxDevice) Read(lpn ftl.LPN, now ssd.Time) (ssd.Time, error) {
	d.m.HostReads++
	ppn, ok := d.mapper.Lookup(lpn)
	if !ok {
		d.m.UnmappedReads++
		return now, nil
	}
	d.pool.RecordAccess(d.content.Get(int64(lpn)), uint64(lpn))
	now, err := d.store.MapRead(lpn, now)
	if err != nil {
		return 0, wrapInterrupted(lpn, err)
	}
	return absorbUncorrectable(d.store.Read(ppn, now))
}

// Metrics implements Device.
func (d *lxDevice) Metrics() DeviceMetrics {
	d.m.GC = d.store.GC()
	d.m.Faults = d.store.FaultStats()
	d.m.Pool = d.pool.Stats()
	d.m.Dftl = d.store.DftlStats()
	busCounts(&d.m, d.bus)
	return d.m
}

// registerTelemetry adds the LX-SSD recycler gauges.
func (d *lxDevice) registerTelemetry(tel *telemetry.Telemetry) {
	tel.RegisterGauge("lx_pool_hit_rate",
		"LX-SSD recycler lookup hit rate", nil,
		func(ssd.Time) float64 { return poolHitRate(d.pool.Stats()) })
	tel.RegisterGauge("lx_recycled_total",
		"host writes short-circuited by the LX recycler", nil,
		func(ssd.Time) float64 { return float64(d.m.Revived) })
}

// Bus exposes the flash timing model for utilization reporting.
func (d *lxDevice) Bus() *ssd.Bus { return d.bus }

// Store exposes the physical store for wear and capacity introspection.
func (d *lxDevice) Store() *ftl.Store { return d.store }
