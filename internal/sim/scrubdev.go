package sim

import (
	"zombiessd/internal/ftl"
	"zombiessd/internal/recovery"
	"zombiessd/internal/scrub"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// scrubbedDevice interposes the background patrol scrubber in front of any
// device: every host request first advances the scrubber to the request's
// arrival time, so patrol visits that came due during the preceding idle
// gap run (stamped into that gap) before the request is serviced. The
// wrapper is outermost — the scrubber must see the true host clock, not
// times already delayed by a write buffer.
type scrubbedDevice struct {
	inner Device
	scr   *scrub.Scrubber
}

// Write implements Device.
func (d *scrubbedDevice) Write(lpn ftl.LPN, h trace.Hash, now ssd.Time) (ssd.Time, error) {
	if err := d.scr.Tick(now); err != nil {
		return 0, wrapInterrupted(lpn, err)
	}
	return d.inner.Write(lpn, h, now)
}

// Read implements Device.
func (d *scrubbedDevice) Read(lpn ftl.LPN, now ssd.Time) (ssd.Time, error) {
	if err := d.scr.Tick(now); err != nil {
		return 0, err
	}
	return d.inner.Read(lpn, now)
}

// Metrics implements Device, adding the patrol counters.
func (d *scrubbedDevice) Metrics() DeviceMetrics {
	m := d.inner.Metrics()
	m.Scrub = d.scr.Stats()
	return m
}

// Scrubber exposes the patrol daemon for tests and reports.
func (d *scrubbedDevice) Scrubber() *scrub.Scrubber { return d.scr }

// Bus forwards to the inner device for utilization reporting.
func (d *scrubbedDevice) Bus() *ssd.Bus {
	if br, ok := d.inner.(interface{ Bus() *ssd.Bus }); ok {
		return br.Bus()
	}
	return nil
}

// Store forwards to the inner device for wear and capacity introspection.
func (d *scrubbedDevice) Store() *ftl.Store { return StoreOf(d.inner) }

// Recover implements Recoverer by forwarding; the scrubber itself holds no
// durable state, so its patrol simply resumes after the inner device is
// rebuilt.
func (d *scrubbedDevice) Recover(opts RecoverOptions) (recovery.Report, error) {
	return Recover(d.inner, opts)
}

// ReadHash implements HashReader by forwarding.
func (d *scrubbedDevice) ReadHash(lpn ftl.LPN) (trace.Hash, bool) {
	if hr, ok := d.inner.(HashReader); ok {
		return hr.ReadHash(lpn)
	}
	return trace.Hash{}, false
}
