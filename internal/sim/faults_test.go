package sim

import (
	"reflect"
	"testing"

	"zombiessd/internal/fault"
	"zombiessd/internal/workload"
)

// faultRun simulates one DVP device over a generated workload under the
// given fault plan and returns the full Result.
func faultRun(t *testing.T, plan fault.Config) Result {
	t.Helper()
	p, ok := workload.ProfileByName("web")
	if !ok {
		t.Fatal("web workload missing")
	}
	recs, err := workload.Generate(p, 20_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var footprint int64
	for _, r := range recs {
		if int64(r.LBA) >= footprint {
			footprint = int64(r.LBA) + 1
		}
	}
	cfg := testConfig(KindDVP, footprint)
	cfg.Geometry = GeometryFor(footprint, 0.85)
	cfg.Faults = plan
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(dev, recs, RunOptions{LogicalPages: footprint, PreconditionPages: footprint})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFaultDeterminism pins the acceptance contract: two runs with the same
// fault seed and the same trace are identical in every metric, and a
// different fault seed actually changes the injected stream.
func TestFaultDeterminism(t *testing.T) {
	plan := fault.Config{
		Seed: 21, ProgramFailProb: 2e-3, EraseFailProb: 1e-3,
		ReadFailProb: 8e-3, WearFactor: 0.02,
	}
	a := faultRun(t, plan)
	b := faultRun(t, plan)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed fault runs diverged:\n%+v\nvs\n%+v", a.Metrics, b.Metrics)
	}
	if !a.Metrics.Faults.Any() {
		t.Fatalf("plan injected nothing: %+v", a.Metrics.Faults)
	}
	if a.Metrics.Faults.ReadRetries == 0 {
		t.Error("no read retries at prob 8e-3 over 20k requests")
	}

	c := faultRun(t, fault.Config{
		Seed: 22, ProgramFailProb: 2e-3, EraseFailProb: 1e-3,
		ReadFailProb: 8e-3, WearFactor: 0.02,
	})
	if reflect.DeepEqual(a.Metrics.Faults, c.Metrics.Faults) {
		t.Error("different fault seeds produced identical fault stats")
	}
}

// TestZeroFaultPlanMatchesPerfectDrive pins the bit-identical guarantee at
// the device level: a zero plan changes no metric and no latency.
func TestZeroFaultPlanMatchesPerfectDrive(t *testing.T) {
	perfect := faultRun(t, fault.Config{})
	if perfect.Metrics.Faults.Any() {
		t.Fatalf("perfect drive recorded fault activity: %+v", perfect.Metrics.Faults)
	}
	again := faultRun(t, fault.Config{})
	if !reflect.DeepEqual(perfect, again) {
		t.Fatal("fault-free runs diverged between invocations")
	}
}

// TestFaultsDegradeButDoNotBreak checks a heavy plan still completes and
// reports the expected recovery work.
func TestFaultsDegradeButDoNotBreak(t *testing.T) {
	clean := faultRun(t, fault.Config{})
	faulty := faultRun(t, fault.Config{
		Seed: 9, ProgramFailProb: 5e-3, EraseFailProb: 2e-3, ReadFailProb: 2e-2,
	})
	f := faulty.Metrics.Faults
	if f.ProgramFailures == 0 || f.Relocations == 0 {
		t.Errorf("heavy plan injected no program failures: %+v", f)
	}
	if faulty.Metrics.FlashPrograms <= clean.Metrics.FlashPrograms {
		t.Errorf("faulty run programmed %d pages, clean %d — failures cost nothing",
			faulty.Metrics.FlashPrograms, clean.Metrics.FlashPrograms)
	}
	if faulty.Metrics.HostWrites != clean.Metrics.HostWrites {
		t.Errorf("host write counts diverged: %d vs %d",
			faulty.Metrics.HostWrites, clean.Metrics.HostWrites)
	}
}
