package sim

import (
	"strings"
	"testing"

	"zombiessd/internal/core"
	"zombiessd/internal/ftl"
	"zombiessd/internal/lxssd"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
	"zombiessd/internal/workload"
)

// testConfig builds a config over a small drive sized for footprint pages
// at high utilization, so GC is active.
func testConfig(kind Kind, footprint int64) Config {
	geo := ssd.Geometry{
		Channels: 4, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 16, PagesPerBlock: 32, PageSize: 4096, OverProvision: 0.15,
	}
	// 4096 pages raw, ~3481 exported.
	cfg := Config{
		Geometry:     geo,
		Latency:      ssd.PaperLatency(),
		Store:        ftl.StoreConfig{GCFreeBlockThreshold: 2, PopularityWeight: DefaultPopularityWeight},
		LogicalPages: footprint,
		Kind:         kind,
		PoolKind:     PoolMQ,
		MQ:           core.MQConfig{Queues: 8, Capacity: 2000, DefaultLifetime: 512},
		LRUCapacity:  2000,
		LX:           lxssd.Config{Capacity: 2000, MinPopularity: 2},
	}
	return cfg
}

const testFootprint = 3000

// redundantTrace builds a write-heavy trace with heavy value reuse over a
// small footprint — the best case for zombie revival.
func redundantTrace(n int) []trace.Record {
	recs := make([]trace.Record, 0, n)
	t := int64(0)
	for i := 0; i < n; i++ {
		t += 40
		lba := uint64(i*37) % testFootprint
		val := uint64(i % 97) // 97 hot values cycling
		recs = append(recs, trace.Record{Time: t, Op: trace.OpWrite, LBA: lba, Hash: trace.HashOfValue(val)})
	}
	return recs
}

func mustRun(t *testing.T, kind Kind, recs []trace.Record) Result {
	t.Helper()
	cfg := testConfig(kind, testFootprint)
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(dev, recs, RunOptions{LogicalPages: testFootprint, PreconditionPages: testFootprint})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(KindDVP, testFootprint)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero logical", func(c *Config) { c.LogicalPages = 0 }},
		{"oversubscribed", func(c *Config) { c.LogicalPages = c.Geometry.TotalPages() }},
		{"bad kind", func(c *Config) { c.Kind = "bogus" }},
		{"bad pool kind", func(c *Config) { c.PoolKind = "bogus" }},
		{"bad mq", func(c *Config) { c.MQ.Queues = 0 }},
		{"bad lru", func(c *Config) { c.PoolKind = PoolLRU; c.LRUCapacity = 0 }},
		{"bad geometry", func(c *Config) { c.Geometry.Channels = 0 }},
		{"bad latency", func(c *Config) { c.Latency.Read = 0 }},
		{"bad store", func(c *Config) { c.Store.GCFreeBlockThreshold = 0 }},
		{"bad lx", func(c *Config) { c.Kind = KindLX; c.LX.Capacity = 0 }},
	}
	for _, c := range cases {
		cfg := testConfig(KindDVP, testFootprint)
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted invalid config", c.name)
		}
	}
}

func TestNewDeviceAllKinds(t *testing.T) {
	for _, kind := range []Kind{KindBaseline, KindDVP, KindDedup, KindDVPDedup, KindLX} {
		if _, err := NewDevice(testConfig(kind, testFootprint)); err != nil {
			t.Errorf("NewDevice(%s): %v", kind, err)
		}
	}
	for _, pk := range []PoolKind{PoolMQ, PoolLRU, PoolInfinite} {
		cfg := testConfig(KindDVP, testFootprint)
		cfg.PoolKind = pk
		if _, err := NewDevice(cfg); err != nil {
			t.Errorf("NewDevice(dvp/%s): %v", pk, err)
		}
	}
}

func TestBaselineProgramsEveryWrite(t *testing.T) {
	recs := redundantTrace(5000)
	res := mustRun(t, KindBaseline, recs)
	m := res.Metrics
	if m.HostWrites != 5000 {
		t.Fatalf("HostWrites = %d, want 5000", m.HostWrites)
	}
	if m.HostPrograms() != 5000 {
		t.Errorf("HostPrograms = %d, want 5000 (baseline never short-circuits)", m.HostPrograms())
	}
	if m.ShortCircuited() != 0 {
		t.Errorf("baseline short-circuited %d writes", m.ShortCircuited())
	}
	minLat := int64(ssd.PaperLatency().Program)
	if res.Writes.Mean < float64(minLat) {
		t.Errorf("mean write latency %.0f below program latency %d", res.Writes.Mean, minLat)
	}
}

func TestDVPRevivesZombies(t *testing.T) {
	recs := redundantTrace(5000)
	base := mustRun(t, KindBaseline, recs)
	dvp := mustRun(t, KindDVP, recs)
	if dvp.Metrics.Revived == 0 {
		t.Fatal("DVP revived nothing on a redundant trace")
	}
	if got, want := dvp.Metrics.HostPrograms(), base.Metrics.HostPrograms(); got >= want {
		t.Errorf("DVP host programs %d not below baseline %d", got, want)
	}
	if dvp.Metrics.HostWrites != dvp.Metrics.HostPrograms()+dvp.Metrics.Revived {
		t.Errorf("accounting broken: writes=%d programs=%d revived=%d",
			dvp.Metrics.HostWrites, dvp.Metrics.HostPrograms(), dvp.Metrics.Revived)
	}
	if dvp.Metrics.FlashErases >= base.Metrics.FlashErases {
		t.Errorf("DVP erases %d not below baseline %d", dvp.Metrics.FlashErases, base.Metrics.FlashErases)
	}
	if dvp.Writes.Mean >= base.Writes.Mean {
		t.Errorf("DVP mean write latency %.0f not below baseline %.0f", dvp.Writes.Mean, base.Writes.Mean)
	}
}

func TestDedupAbsorbsRedundantWrites(t *testing.T) {
	recs := redundantTrace(5000)
	res := mustRun(t, KindDedup, recs)
	if res.Metrics.DedupHits == 0 {
		t.Fatal("dedup absorbed nothing on a redundant trace")
	}
	if res.Metrics.Revived != 0 {
		t.Error("plain dedup cannot revive zombies")
	}
	if res.Metrics.HostWrites != res.Metrics.HostPrograms()+res.Metrics.DedupHits {
		t.Errorf("accounting broken: %+v", res.Metrics)
	}
}

// fig13Trace reproduces the paper's Fig 13 scenario at scale: value D is
// written, killed by an unrelated update, then written again. Dedup cannot
// absorb the rebirth (D is dead at that point); the dead-value pool can.
func fig13Trace(n int) []trace.Record {
	recs := make([]trace.Record, 0, 3*n)
	t := int64(0)
	add := func(lba, val uint64) {
		t += 40
		recs = append(recs, trace.Record{Time: t, Op: trace.OpWrite, LBA: lba, Hash: trace.HashOfValue(val)})
	}
	for k := 0; k < n; k++ {
		d := uint64(2 * k)            // value D of this round
		x := uint64(1<<40) + d        // unique filler value
		lba1 := uint64(k) % 1000      // first home of D
		lba2 := 1000 + uint64(k)%1000 // second home of D
		add(lba1, d)                  // W1: D written
		add(lba1, x)                  // W: D turns into garbage
		add(lba2, d)                  // W4: D reborn — only the pool can short-circuit this
	}
	return recs
}

func TestDVPDedupBeatsDedupAlone(t *testing.T) {
	recs := fig13Trace(2000)
	dedupOnly := mustRun(t, KindDedup, recs)
	combined := mustRun(t, KindDVPDedup, recs)
	if combined.Metrics.Revived == 0 {
		t.Fatal("combined system revived nothing on the Fig 13 pattern")
	}
	if got, want := combined.Metrics.HostPrograms(), dedupOnly.Metrics.HostPrograms(); got >= want {
		t.Errorf("DVP+Dedup programs %d not below dedup-only %d", got, want)
	}
}

func TestLXDeviceRunsAndRevives(t *testing.T) {
	recs := redundantTrace(5000)
	res := mustRun(t, KindLX, recs)
	if res.Metrics.Revived == 0 {
		t.Fatal("LX revived nothing on a redundant trace")
	}
	if res.Metrics.HostWrites != res.Metrics.HostPrograms()+res.Metrics.Revived {
		t.Errorf("accounting broken: %+v", res.Metrics)
	}
}

func TestRunRejectsOutOfRangeLBA(t *testing.T) {
	dev, err := NewDevice(testConfig(KindBaseline, testFootprint))
	if err != nil {
		t.Fatal(err)
	}
	recs := []trace.Record{{Op: trace.OpWrite, LBA: testFootprint + 5, Hash: trace.HashOfValue(1)}}
	if _, err := Run(dev, recs, RunOptions{LogicalPages: testFootprint}); err == nil ||
		!strings.Contains(err.Error(), "outside logical space") {
		t.Errorf("Run accepted out-of-range LBA: %v", err)
	}
}

func TestRunOptionValidation(t *testing.T) {
	dev, _ := NewDevice(testConfig(KindBaseline, testFootprint))
	if _, err := Run(dev, nil, RunOptions{}); err == nil {
		t.Error("accepted zero LogicalPages")
	}
	if _, err := Run(dev, nil, RunOptions{LogicalPages: 10, PreconditionPages: 20}); err == nil {
		t.Error("accepted precondition larger than logical space")
	}
}

func TestPreconditionExcludedFromMetrics(t *testing.T) {
	recs := redundantTrace(100)
	res := mustRun(t, KindBaseline, recs)
	if res.Metrics.HostWrites != 100 {
		t.Errorf("HostWrites = %d includes preconditioning, want 100", res.Metrics.HostWrites)
	}
	if res.All.Count != 100 {
		t.Errorf("latency samples = %d, want 100", res.All.Count)
	}
}

func TestUnmappedReadsServeInstantly(t *testing.T) {
	dev, _ := NewDevice(testConfig(KindBaseline, testFootprint))
	recs := []trace.Record{{Time: 5, Op: trace.OpRead, LBA: 7}}
	res, err := Run(dev, recs, RunOptions{LogicalPages: testFootprint})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.UnmappedReads != 1 {
		t.Errorf("UnmappedReads = %d, want 1", res.Metrics.UnmappedReads)
	}
	if res.Reads.Mean != 0 {
		t.Errorf("unmapped read latency = %.0f, want 0", res.Reads.Mean)
	}
}

func TestDeterministicRuns(t *testing.T) {
	recs := redundantTrace(3000)
	a := mustRun(t, KindDVP, recs)
	b := mustRun(t, KindDVP, recs)
	if a.Metrics != b.Metrics {
		t.Errorf("metrics differ across identical runs:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
	if a.All != b.All || a.Makespan != b.Makespan {
		t.Error("latency summaries differ across identical runs")
	}
}

func TestGCActiveUnderChurn(t *testing.T) {
	recs := redundantTrace(20000) // ~6× the footprint: GC must run
	res := mustRun(t, KindBaseline, recs)
	if res.Metrics.GC.Runs == 0 || res.Metrics.FlashErases == 0 {
		t.Fatalf("no GC under heavy churn: %+v", res.Metrics.GC)
	}
	// GC erase stalls must surface in the tail.
	if res.All.P99 < int64(ssd.PaperLatency().Program) {
		t.Errorf("P99 %dµs suspiciously low with GC active", res.All.P99)
	}
}

func TestGeometryFor(t *testing.T) {
	g := GeometryFor(1_000_000, 0.9)
	if err := g.Validate(); err != nil {
		t.Fatalf("GeometryFor produced invalid geometry: %v", err)
	}
	util := float64(1_000_000) / float64(g.ExportedPages())
	if util < 0.5 || util > 1.0 {
		t.Errorf("utilization = %.2f, want near 0.9", util)
	}
	// Tiny footprints floor at 8 blocks per plane.
	if g2 := GeometryFor(100, 0.9); g2.BlocksPerPlane != 8 {
		t.Errorf("tiny footprint blocksPerPlane = %d, want floor 8", g2.BlocksPerPlane)
	}
	// Degenerate utilization falls back to a sane default.
	if g3 := GeometryFor(1000, 0); g3.Validate() != nil {
		t.Error("GeometryFor with zero utilization produced invalid geometry")
	}
}

func TestEndToEndMailWorkloadShape(t *testing.T) {
	// The headline claim on a mail-like workload: DVP cuts writes and
	// erases and improves mean latency over baseline.
	p, _ := workload.ProfileByName("mail")
	recs, err := workload.Generate(p, 30000, 77)
	if err != nil {
		t.Fatal(err)
	}
	footprint := int64(0)
	for _, r := range recs {
		if int64(r.LBA) >= footprint {
			footprint = int64(r.LBA) + 1
		}
	}
	build := func(kind Kind) Result {
		cfg := testConfig(kind, footprint)
		cfg.Geometry = GeometryFor(footprint, 0.88)
		dev, err := NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(dev, recs, RunOptions{LogicalPages: footprint, PreconditionPages: footprint})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := build(KindBaseline)
	dvp := build(KindDVP)
	writeRed := 1 - float64(dvp.Metrics.HostPrograms())/float64(base.Metrics.HostPrograms())
	if writeRed < 0.2 {
		t.Errorf("mail write reduction = %.1f%%, want ≥20%% (paper: up to 70%%)", writeRed*100)
	}
	if dvp.All.Mean >= base.All.Mean {
		t.Errorf("mail mean latency: DVP %.0f ≥ baseline %.0f", dvp.All.Mean, base.All.Mean)
	}
}

func TestAdaptivePoolDevice(t *testing.T) {
	cfg := testConfig(KindDVP, testFootprint)
	cfg.PoolKind = PoolAdaptive
	cfg.Adaptive = core.AdaptiveConfig{
		MQ:          core.MQConfig{Queues: 8, Capacity: 500, DefaultLifetime: 512},
		MinCapacity: 100, MaxCapacity: 5000, Window: 1024, Step: 0.25,
	}
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(dev, redundantTrace(8000), RunOptions{LogicalPages: testFootprint, PreconditionPages: testFootprint})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Revived == 0 {
		t.Fatal("adaptive-pool device revived nothing")
	}
	// Invalid adaptive config must be rejected at validation time.
	bad := cfg
	bad.Adaptive.Window = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted invalid adaptive config")
	}
}

func TestWriteBufferAbsorbsOverwrites(t *testing.T) {
	cfg := testConfig(KindBaseline, testFootprint)
	cfg.WriteBufferPages = 64
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer a handful of pages: nearly every write coalesces in RAM.
	recs := make([]trace.Record, 0, 2000)
	tm := int64(0)
	for i := 0; i < 2000; i++ {
		tm += 30
		recs = append(recs, trace.Record{
			Time: tm, Op: trace.OpWrite,
			LBA:  uint64(i % 16),
			Hash: trace.HashOfValue(uint64(i)),
		})
	}
	res, err := Run(dev, recs, RunOptions{LogicalPages: testFootprint})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.HostWrites != 2000 {
		t.Fatalf("HostWrites = %d, want 2000", m.HostWrites)
	}
	if m.BufferAbsorbed == 0 {
		t.Fatal("buffer absorbed nothing")
	}
	if m.HostPrograms() != 0 {
		t.Fatalf("flash programs = %d; 16 pages fit entirely in a 64-page buffer", m.HostPrograms())
	}
	// Accounting identity: every host write was absorbed (coalesced or
	// still dirty) or programmed/short-circuited downstream.
	if got := m.HostPrograms() + m.ShortCircuited() + m.BufferAbsorbed; got != m.HostWrites {
		t.Fatalf("accounting: programs+shortcircuit+absorbed = %d, want %d", got, m.HostWrites)
	}
	// Buffered writes are RAM-fast.
	if res.Writes.Mean > 10 {
		t.Errorf("buffered write mean latency = %.1fµs, want RAM-fast", res.Writes.Mean)
	}
}

func TestWriteBufferReadsDirtyPages(t *testing.T) {
	cfg := testConfig(KindBaseline, testFootprint)
	cfg.WriteBufferPages = 8
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := []trace.Record{
		{Time: 10, Op: trace.OpWrite, LBA: 5, Hash: trace.HashOfValue(1)},
		{Time: 20, Op: trace.OpRead, LBA: 5},
		{Time: 30, Op: trace.OpRead, LBA: 6}, // never written: unmapped below
	}
	res, err := Run(dev, recs, RunOptions{LogicalPages: testFootprint})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.BufferReadHits != 1 {
		t.Fatalf("BufferReadHits = %d, want 1", res.Metrics.BufferReadHits)
	}
	if res.Metrics.UnmappedReads != 1 {
		t.Fatalf("UnmappedReads = %d, want 1", res.Metrics.UnmappedReads)
	}
}

func TestWriteBufferWithDVPStillRevives(t *testing.T) {
	// Section VII's claim: a caching layer absorbs some duplicates but the
	// dead-value pool still finds rebirths behind it. Deaths and rebirths
	// here are separated by whole phases, far beyond the buffer's
	// residence, so coalescing cannot hide them.
	var recs []trace.Record
	tm := int64(0)
	add := func(lba, val uint64) {
		tm += 40
		recs = append(recs, trace.Record{Time: tm, Op: trace.OpWrite, LBA: lba, Hash: trace.HashOfValue(val)})
	}
	const rounds = 800
	for k := uint64(0); k < rounds; k++ {
		add(k%1000, 2*k) // phase 1: D_k written
	}
	for k := uint64(0); k < rounds; k++ {
		add(k%1000, 1<<40+k) // phase 2: D_k dies...
		add(k%1000, 1<<41+k) // ...and the killer is immediately overwritten:
		// back-to-back same-page writes coalesce in the buffer.
	}
	for k := uint64(0); k < rounds; k++ {
		add(1000+k%1000, 2*k) // phase 3: D_k reborn elsewhere
	}
	cfg := testConfig(KindDVP, testFootprint)
	cfg.WriteBufferPages = 32 // small: Fig 13's rebirth gap exceeds it
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(dev, recs, RunOptions{LogicalPages: testFootprint, PreconditionPages: testFootprint})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Revived == 0 {
		t.Fatal("DVP revived nothing behind the write buffer")
	}
	if res.Metrics.BufferAbsorbed == 0 {
		t.Fatal("buffer absorbed nothing")
	}
}

func TestWriteBufferConfigValidation(t *testing.T) {
	cfg := testConfig(KindBaseline, testFootprint)
	cfg.WriteBufferPages = -1
	if err := cfg.Validate(); err == nil {
		t.Error("accepted negative write buffer")
	}
}
