package sim

import (
	"errors"
	"testing"

	"zombiessd/internal/fault"
	"zombiessd/internal/ftl"
	"zombiessd/internal/health"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// stubDevice scripts the inner device's responses so governor wiring can
// be tested without staging a real drive into each state.
type stubDevice struct {
	writeErrs []error // consumed one per Write call; empty = success
	writes    int
	reads     int
	lastNow   ssd.Time
}

func (d *stubDevice) Write(lpn ftl.LPN, h trace.Hash, now ssd.Time) (ssd.Time, error) {
	d.writes++
	d.lastNow = now
	if len(d.writeErrs) > 0 {
		err := d.writeErrs[0]
		d.writeErrs = d.writeErrs[1:]
		if err != nil {
			return 0, err
		}
	}
	return now + 100*ssd.Microsecond, nil
}

func (d *stubDevice) Read(lpn ftl.LPN, now ssd.Time) (ssd.Time, error) {
	d.reads++
	return now + 50*ssd.Microsecond, nil
}

func (d *stubDevice) Metrics() DeviceMetrics { return DeviceMetrics{} }

func TestHealthDeviceWrapOrder(t *testing.T) {
	cfg := testConfig(KindDVP, testFootprint)
	cfg.Health = health.Config{MaxRetries: 2}
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hd, ok := dev.(*healthDevice)
	if !ok {
		t.Fatalf("governed device is %T, want *healthDevice outermost", dev)
	}
	if hd.Store() == nil {
		t.Error("Store() lost through the health wrapper")
	}
	if hd.Bus() == nil {
		t.Error("Bus() lost through the health wrapper")
	}
	if st := hd.HealthStats(); st.State != health.Healthy || st.Transitions != 0 {
		t.Errorf("fresh governor reports %+v", st)
	}
	// Ungoverned config must not wrap.
	cfg.Health = health.Config{}
	dev, err = NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dev.(*healthDevice); ok {
		t.Error("disabled governor still wrapped the device")
	}
}

func TestAttachShadowUnwrapsHealthWrapper(t *testing.T) {
	cfg := testConfig(KindDVP, testFootprint)
	cfg.WriteBufferPages = 64
	cfg.Health = health.Config{MaxRetries: 2}
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, needAck := AttachShadow(dev); needAck {
		t.Fatal("AttachShadow did not find the buffered layer under the health wrapper")
	}
}

func TestHealthRetriesTransientProgramFault(t *testing.T) {
	inner := &stubDevice{writeErrs: []error{ftl.ErrProgramFault, ftl.ErrProgramFault, nil}}
	d := newHealthDevice(inner, nil, health.Config{MaxRetries: 3, RetryBackoff: 10 * ssd.Microsecond})
	done, err := d.Write(1, trace.HashOfValue(1), 1000)
	if err != nil {
		t.Fatalf("write failed despite retry budget: %v", err)
	}
	if inner.writes != 3 {
		t.Errorf("inner.Write called %d times, want 3", inner.writes)
	}
	if want := ssd.Time(1000 + 2*10*ssd.Microsecond); inner.lastNow != want {
		t.Errorf("final attempt submitted at %d, want %d (two backoffs)", inner.lastNow, want)
	}
	if done <= 1000 {
		t.Errorf("done = %d", done)
	}
	if st := d.HealthStats(); st.Retries != 2 {
		t.Errorf("Retries = %d, want 2", st.Retries)
	}

	// A fault that outlives the budget escapes as ErrProgramFault.
	inner = &stubDevice{writeErrs: []error{ftl.ErrProgramFault, ftl.ErrProgramFault, ftl.ErrProgramFault}}
	d = newHealthDevice(inner, nil, health.Config{MaxRetries: 2})
	if _, err := d.Write(1, trace.HashOfValue(1), 0); !errors.Is(err, ftl.ErrProgramFault) {
		t.Errorf("exhausted retries returned %v, want ErrProgramFault", err)
	}
	if inner.writes != 3 {
		t.Errorf("inner.Write called %d times, want 3 (1 + 2 retries)", inner.writes)
	}
}

func TestHealthNoSpaceForcesReadOnly(t *testing.T) {
	inner := &stubDevice{writeErrs: []error{ftl.ErrNoSpace}}
	d := newHealthDevice(inner, nil, health.Config{MaxRetries: 1})
	_, err := d.Write(1, trace.HashOfValue(1), 0)
	if !errors.Is(err, health.ErrReadOnly) {
		t.Fatalf("ErrNoSpace surfaced as %v, want ErrReadOnly", err)
	}
	st := d.HealthStats()
	if st.State != health.ReadOnly || st.ForcedReadOnly != 1 || st.RejectedWrites != 1 {
		t.Fatalf("after ErrNoSpace: %+v", st)
	}
	// The pin is sticky (no configured free-block floor): later writes are
	// refused before reaching the drive, reads still flow.
	if _, err := d.Write(2, trace.HashOfValue(2), 100); !errors.Is(err, health.ErrReadOnly) {
		t.Fatalf("second write returned %v", err)
	}
	if inner.writes != 1 {
		t.Errorf("rejected write reached the inner device (%d calls)", inner.writes)
	}
	if _, err := d.Read(1, 200); err != nil {
		t.Errorf("read-only device refused a read: %v", err)
	}
	if st := d.HealthStats(); st.RejectedWrites != 2 {
		t.Errorf("RejectedWrites = %d, want 2", st.RejectedWrites)
	}
}

func TestHealthDeadRejectsEverything(t *testing.T) {
	inner := &stubDevice{}
	d := newHealthDevice(inner, nil, health.Config{DeadLostPages: 5})
	// Push the governor to dead through its own ladder: the sample layer is
	// exercised end-to-end by the chaos soak, here we pin the wiring.
	if s := d.Governor().Observe(health.Sample{LostPages: 5}, 0); s != health.Dead {
		t.Fatalf("Observe = %v, want dead", s)
	}
	if _, err := d.Write(1, trace.HashOfValue(1), 0); !errors.Is(err, health.ErrDeviceDead) {
		t.Errorf("write on dead device returned %v", err)
	}
	if _, err := d.Read(1, 0); !errors.Is(err, health.ErrDeviceDead) {
		t.Errorf("read on dead device returned %v", err)
	}
	if inner.writes != 0 || inner.reads != 0 {
		t.Errorf("dead device still forwarded operations: %d writes, %d reads", inner.writes, inner.reads)
	}
	st := d.HealthStats()
	if st.RejectedWrites != 1 || st.RejectedReads != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestHealthThrottleChargesDelay runs a real governed drive under GC
// pressure and checks throttled writes both happen and cost time.
func TestHealthThrottleChargesDelay(t *testing.T) {
	// A sparse trace (arrivals far apart) keeps the chips idle so the
	// throttle delay lands in end-to-end latency instead of being absorbed
	// by queueing.
	recs := make([]trace.Record, 6000)
	for i := range recs {
		recs[i] = trace.Record{
			Time: int64(i) * 2000,
			Op:   trace.OpWrite,
			LBA:  uint64(i*37) % testFootprint,
			Hash: trace.HashOfValue(uint64(i % 97)),
		}
	}
	run := func(h health.Config) Result {
		cfg := testConfig(KindBaseline, testFootprint)
		cfg.Store.GCFreeBlockThreshold = 4
		cfg.Health = h
		dev, err := NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(dev, recs, RunOptions{
			LogicalPages: testFootprint, PreconditionPages: testFootprint,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free := run(health.Config{})
	throttled := run(health.Config{ThrottleDebt: 1, ThrottleDelay: 500 * ssd.Microsecond})
	if throttled.Health.ThrottledWrites == 0 {
		t.Fatal("no writes throttled despite GC debt and a 1-block trip point")
	}
	if throttled.Writes.Mean <= free.Writes.Mean {
		t.Errorf("throttling did not cost write latency: mean %v vs %v",
			throttled.Writes.Mean, free.Writes.Mean)
	}
	if free.Health.ThrottledWrites != 0 || free.Health.State != health.Healthy {
		t.Errorf("ungoverned run reports governor activity: %+v", free.Health)
	}
}

// noSpaceTenants builds two write-only tenant streams big enough to wear a
// small erase-fail-everything drive out of free blocks mid-run.
func noSpaceTenants(perTenant int, footprint int64) []TenantTrace {
	mk := func(name string, valueBase uint64) TenantTrace {
		recs := make([]trace.Record, perTenant)
		for i := range recs {
			recs[i] = trace.Record{
				Time: int64(i) * 20,
				Op:   trace.OpWrite,
				LBA:  uint64(i) % uint64(footprint),
				Hash: trace.HashOfValue(valueBase + uint64(i)),
			}
		}
		return TenantTrace{
			Cfg:       TenantConfig{Name: name, Weight: 1},
			Recs:      recs,
			Footprint: footprint,
		}
	}
	return []TenantTrace{mk("a", 1<<32), mk("b", 2<<32)}
}

// TestRunTenantsNoSpace pins the graceful-degradation contract under space
// exhaustion: a drive that retires every erased block runs out of free
// blocks mid-run. Ungoverned, that kills the run with ErrNoSpace;
// governed, the run completes read-only with per-tenant rejection counts.
func TestRunTenantsNoSpace(t *testing.T) {
	run := func(h health.Config) (MultiResult, error) {
		cfg := testConfig(KindBaseline, testFootprint)
		cfg.Faults = fault.Config{Seed: 11, EraseFailProb: 1}
		cfg.Health = h
		dev, err := NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return RunTenants(dev, noSpaceTenants(4000, testFootprint/2), EngineOptions{
			LogicalPages: testFootprint,
		})
	}

	if _, err := run(health.Config{}); !errors.Is(err, ftl.ErrNoSpace) {
		t.Fatalf("ungoverned run returned %v, want ErrNoSpace", err)
	}

	res, err := run(health.Config{MaxRetries: 1})
	if err != nil {
		t.Fatalf("governed run failed: %v", err)
	}
	if res.Health.State != health.ReadOnly {
		t.Errorf("final state %v, want read-only", res.Health.State)
	}
	if res.Health.ForcedReadOnly == 0 {
		t.Error("governor never recorded the ErrNoSpace trip")
	}
	var rejected, served int64
	for _, tr := range res.Tenants {
		rejected += tr.WritesRejected
		served += tr.Requests
	}
	if rejected == 0 {
		t.Error("no writes rejected on the read-only drive")
	}
	if served == 0 {
		t.Error("no writes served before exhaustion")
	}
	if res.Health.RejectedWrites != rejected {
		t.Errorf("governor counted %d rejections, tenants %d", res.Health.RejectedWrites, rejected)
	}
}
