package sim

import (
	"zombiessd/internal/core"
	"zombiessd/internal/dedup"
	"zombiessd/internal/ftl"
	"zombiessd/internal/ssd"
	"zombiessd/internal/telemetry"
	"zombiessd/internal/trace"
)

// dedupDevice is the deduplicating SSD of Section VII, optionally combined
// with a dead-value pool (KindDVPDedup). Writes of content that is already
// live just add a reference; when a page loses its last reference it turns
// into garbage and — with the pool attached — becomes revivable, which is
// exactly the window (t3…t4 in Fig 13) deduplication alone cannot exploit.
type dedupDevice struct {
	cfg    Config
	bus    *ssd.Bus
	store  *ftl.Store
	dmap   *dedup.Mapper
	pool   core.Pool // nil for plain dedup
	ledger *core.Ledger
	lat    ssd.Latency

	tick core.Tick
	m    DeviceMetrics
}

func newDedupDevice(cfg Config, bus *ssd.Bus, store *ftl.Store) (*dedupDevice, error) {
	dmap, err := dedup.NewMapper(cfg.LogicalPages)
	if err != nil {
		return nil, err
	}
	d := &dedupDevice{
		cfg:    cfg,
		bus:    bus,
		store:  store,
		dmap:   dmap,
		ledger: core.NewLedger(),
		lat:    cfg.Latency,
	}
	// GC relocation stamps the copy's OOB with the first owner; the other
	// owners of a deduplicated page are rebound via the durable journal so
	// recovery restores every reference. The closures read d.dmap so that
	// post-crash recovery can swap in a rebuilt mapper without rewiring.
	store.OwnerOf = func(ppn ssd.PPN) (ftl.LPN, bool) {
		owners := d.dmap.Owners(ppn)
		if len(owners) == 0 {
			return 0, false
		}
		return owners[0], true
	}
	store.OnRelocate = func(src, dst ssd.PPN) {
		owners := d.dmap.Owners(src)
		d.dmap.Relocate(src, dst)
		for _, lpn := range owners[1:] {
			store.AppendBinding(lpn, dst, false)
			// The store queues the first owner's translation update itself
			// when it stamps the relocated copy; secondary references are
			// only known here.
			store.NoteGCMapUpdate(lpn, dst)
		}
	}
	// Through d.dmap so post-crash recovery can swap in a rebuilt mapper
	// without rewiring.
	store.LookupOf = func(lpn ftl.LPN) (ssd.PPN, bool) { return d.dmap.Lookup(lpn) }
	if cfg.Kind == KindDVPDedup {
		pool, err := buildPool(cfg, d.ledger)
		if err != nil {
			return nil, err
		}
		d.pool = pool
		store.OnEraseGarbage = pool.Drop
		store.Scorer = pool
	}
	return d, nil
}

// Write implements Device.
func (d *dedupDevice) Write(lpn ftl.LPN, h trace.Hash, now ssd.Time) (ssd.Time, error) {
	d.m.HostWrites++
	d.tick++
	d.ledger.Bump(h)
	// Every path below starts by consulting the logical page's current
	// binding, so the covering translation frame is faulted in up front;
	// the bind at the end then dirties the already-resident frame.
	hashDone, merr := d.store.MapRead(lpn, now+d.lat.Hash)
	if merr != nil {
		return 0, wrapInterrupted(lpn, merr)
	}

	// Identical overwrite: the logical page already holds this content;
	// nothing changes anywhere.
	if ppn, ok := d.dmap.Lookup(lpn); ok {
		if v, _ := d.dmap.ValueOf(ppn); v == h {
			d.m.DedupHits++
			return hashDone, nil
		}
	}

	// Detach the old content; its physical page may become garbage.
	oldPPN, oldHash, garbage, _, err := d.dmap.Unbind(lpn)
	if err != nil {
		return 0, err
	}
	if garbage {
		if err := d.store.Invalidate(oldPPN); err != nil {
			return 0, err
		}
		if d.pool != nil {
			d.pool.Insert(oldHash, oldPPN, d.tick)
		}
	}

	// Dedup fast path: the value is live somewhere — add a reference.
	if ppn, ok := d.dmap.LiveValue(h); ok {
		if err := d.dmap.BindExisting(lpn, ppn); err != nil {
			return 0, err
		}
		d.store.AppendBinding(lpn, ppn, false)
		d.m.DedupHits++
		done, err := d.store.MapWrite(lpn, ppn, hashDone)
		if err != nil {
			return 0, wrapInterrupted(lpn, err)
		}
		return done, nil
	}

	// Dead-value pool path: the value is dead but a zombie copy survives.
	// Only mapping tables change, so the binding goes to the durable
	// journal, not OOB. On an armed store the revival must pass the
	// integrity gate first; a declined zombie falls through to a fresh
	// program, paying the verify read that condemned it.
	if d.pool != nil {
		if ppn, ok := d.pool.Lookup(h, d.tick); ok {
			vdone, ok, err := d.store.VerifyRevive(ppn, hashDone)
			if err != nil {
				return 0, wrapInterrupted(lpn, err)
			}
			if ok {
				if err := d.store.Revalidate(ppn); err != nil {
					return 0, err
				}
				d.store.AppendBinding(lpn, ppn, true)
				if err := d.dmap.BindNew(lpn, ppn, h); err != nil {
					return 0, err
				}
				d.m.Revived++
				vdone, err = d.store.MapWrite(lpn, ppn, vdone)
				if err != nil {
					return 0, wrapInterrupted(lpn, err)
				}
				return vdone, nil
			}
			hashDone = vdone
		}
	}

	// Cold value: program a fresh page.
	ppn, done, err := d.store.Program(hashDone)
	if err != nil {
		return 0, wrapInterrupted(lpn, err)
	}
	d.store.StampOOB(ppn, lpn, h, false)
	if err := d.dmap.BindNew(lpn, ppn, h); err != nil {
		return 0, err
	}
	done, err = d.store.MapWrite(lpn, ppn, done)
	if err != nil {
		return 0, wrapInterrupted(lpn, err)
	}
	return done, nil
}

// Read implements Device.
func (d *dedupDevice) Read(lpn ftl.LPN, now ssd.Time) (ssd.Time, error) {
	d.m.HostReads++
	ppn, ok := d.dmap.Lookup(lpn)
	if !ok {
		d.m.UnmappedReads++
		return now, nil
	}
	now, err := d.store.MapRead(lpn, now)
	if err != nil {
		return 0, wrapInterrupted(lpn, err)
	}
	return absorbUncorrectable(d.store.Read(ppn, now))
}

// Metrics implements Device.
func (d *dedupDevice) Metrics() DeviceMetrics {
	d.m.GC = d.store.GC()
	d.m.Faults = d.store.FaultStats()
	if d.pool != nil {
		d.m.Pool = d.pool.Stats()
	}
	d.m.Dftl = d.store.DftlStats()
	busCounts(&d.m, d.bus)
	return d.m
}

// registerTelemetry adds the deduplication gauges, plus the dead-value
// pool gauges when this is the combined DVP+Dedup architecture.
func (d *dedupDevice) registerTelemetry(tel *telemetry.Telemetry) {
	tel.RegisterGauge("dedup_hit_rate",
		"host writes short-circuited by a live duplicate", nil,
		func(ssd.Time) float64 {
			if d.m.HostWrites == 0 {
				return 0
			}
			return float64(d.m.DedupHits) / float64(d.m.HostWrites)
		})
	if d.pool != nil {
		tel.RegisterGauge("dvp_hit_rate",
			"dead-value pool lookup hit rate", nil,
			func(ssd.Time) float64 { return poolHitRate(d.pool.Stats()) })
		tel.RegisterGauge("dvp_revived_total",
			"host writes short-circuited by a zombie revival", nil,
			func(ssd.Time) float64 { return float64(d.m.Revived) })
	}
}

// DedupStats exposes the mapper's counters for tests and reports.
func (d *dedupDevice) DedupStats() dedup.Stats { return d.dmap.Stats() }

// Bus exposes the flash timing model for utilization reporting.
func (d *dedupDevice) Bus() *ssd.Bus { return d.bus }

// Store exposes the physical store for wear and capacity introspection.
func (d *dedupDevice) Store() *ftl.Store { return d.store }
