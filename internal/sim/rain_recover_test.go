package sim

import (
	"errors"
	"testing"

	"zombiessd/internal/fault"
	"zombiessd/internal/ftl"
	"zombiessd/internal/rain"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// rainFootprint is sized so the drive survives losing a whole die: the
// test geometry exports ~2688 pages under width-4 striping, and after one
// of its eight dies retires the survivors also absorb the data members of
// every stripe whose parity home died with the die.
const rainFootprint = 1200

// rainTrace is redundantTrace over an explicit footprint, with a read
// mixed in every fifth record so dead-die pages get pulled through the
// on-demand reconstruction path, not just the rebuild daemon.
func rainTrace(n int, footprint int64) []trace.Record {
	recs := make([]trace.Record, 0, n)
	t := int64(0)
	for i := 0; i < n; i++ {
		t += 40
		lba := uint64(i*37) % uint64(footprint)
		if i%5 == 4 {
			recs = append(recs, trace.Record{Time: t, Op: trace.OpRead, LBA: lba})
			continue
		}
		val := uint64(i % 97)
		recs = append(recs, trace.Record{Time: t, Op: trace.OpWrite, LBA: lba, Hash: trace.HashOfValue(val)})
	}
	return recs
}

func rainTestConfig(kind Kind) Config {
	cfg := testConfig(kind, rainFootprint)
	cfg.RAIN = rain.Config{Enable: true}
	cfg.Faults.DieFailAtOp = rainFootprint + 500
	cfg.Faults.DieFailDie = 3
	return cfg
}

// TestRainWrapperPresence pins the zero-config guarantee at the device
// layer: without Config.RAIN no rain wrapper is built and the store runs
// without a stripe tracker; with it, the wrapper is the outermost device
// (inside only the health governor) and the store tracks stripes.
func TestRainWrapperPresence(t *testing.T) {
	cfg := testConfig(KindDVP, testFootprint)
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dev.(*rainDevice); ok {
		t.Error("zero RAIN config built a rainDevice wrapper")
	}
	if StoreOf(dev).RainEnabled() {
		t.Error("zero RAIN config armed the store's stripe tracker")
	}
	cfg = testConfig(KindDVP, rainFootprint)
	cfg.RAIN = rain.Config{Enable: true}
	rdev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rdev.(*rainDevice); !ok {
		t.Errorf("RAIN-enabled device is %T, want *rainDevice outermost", rdev)
	}
	if !StoreOf(rdev).RainEnabled() {
		t.Error("RAIN-enabled store has no stripe tracker")
	}
}

// runRainCrash replays rainTrace on a RAIN device that loses die 3
// mid-trace, cutting power at bus op crashAt (0 = never). On the crash it
// recovers, checks the stripe invariant and the rebuild plan's
// consistency, then finishes the trace; afterwards the rebuild daemon is
// drained and the end state must be fully healed: rebuild done, stripe
// invariant clean, zero lost pages, zero oracle violations.
func runRainCrash(t *testing.T, cfg Config, recs []trace.Record, crashAt int64) (opsAtFail, opsEnd int64, crashed bool) {
	t.Helper()
	cfg.Faults.CrashAtOp = crashAt
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shadow, ackOnWrite := AttachShadow(dev)
	hr := dev.(HashReader)
	store := StoreOf(dev)

	var end ssd.Time
	for lpn := int64(0); lpn < rainFootprint; lpn++ {
		h := PreconditionHash(lpn)
		done, err := dev.Write(ftl.LPN(lpn), h, 0)
		if err != nil {
			t.Fatalf("precondition write %d: %v", lpn, err)
		}
		shadow.Observe(ftl.LPN(lpn), h)
		if ackOnWrite {
			shadow.Ack(ftl.LPN(lpn), h)
		}
		if done > end {
			end = done
		}
	}
	shift := end + ssd.Millisecond
	for i, rec := range recs {
		arrival := shift + ssd.Time(rec.Time)
		lpn := ftl.LPN(rec.LBA)
		var err error
		switch rec.Op {
		case trace.OpWrite:
			_, err = dev.Write(lpn, rec.Hash, arrival)
			if err == nil {
				shadow.Observe(lpn, rec.Hash)
				if ackOnWrite {
					shadow.Ack(lpn, rec.Hash)
				}
			}
		case trace.OpRead:
			_, err = dev.Read(lpn, arrival)
		}
		if opsAtFail == 0 && store.DieFailed() {
			opsAtFail = testBusOps(t, dev)
		}
		if err == nil {
			continue
		}
		if crashed || !errors.Is(err, fault.ErrPowerLoss) {
			t.Fatalf("record %d: %v", i, err)
		}
		crashed = true
		var iw *InterruptedWrite
		if errors.As(err, &iw) {
			shadow.Exempt(iw.LPN)
		}
		if _, err := Recover(dev, RecoverOptions{}); err != nil {
			t.Fatalf("recovery at record %d: %v", i, err)
		}
		if err := store.CheckRain(); err != nil {
			t.Fatalf("stripe invariant broken right after recovery: %v", err)
		}
		if v := shadow.Verify(hr); len(v) > 0 {
			t.Fatalf("%d oracle violations after recovery, first: %v", len(v), v[0])
		}
		// The recovered rebuild plan must resume, not restart: its pending
		// set is exactly the valid pages still stranded on the dead die —
		// pages re-landed before the crash are durable and absent from it.
		if store.DieFailed() {
			rdev, ok := dev.(*rainDevice)
			if !ok {
				t.Fatalf("device is %T, want *rainDevice", dev)
			}
			pending := make(map[ssd.PPN]bool, len(rdev.RebuildPlan().Pending))
			for _, p := range rdev.RebuildPlan().Pending {
				pending[p] = true
			}
			for p := ssd.PPN(0); p < ssd.PPN(cfg.Geometry.TotalPages()); p++ {
				stranded := store.State(p) == ftl.PageValid && store.PageDead(p) && !store.LostPage(p)
				if stranded != pending[p] {
					t.Fatalf("rebuild plan at page %d: pending=%v, stranded=%v", p, pending[p], stranded)
				}
			}
		}
	}
	opsEnd = testBusOps(t, dev)

	if !store.DieFailed() {
		t.Fatal("die kill never fired")
	}
	for i := 0; !store.RebuildDone(); i++ {
		if i > int(cfg.Geometry.TotalPages())*4 {
			t.Fatalf("rebuild drain never finished (%d pages pending)", store.RebuildPending())
		}
		if err := store.RebuildTick(shift + ssd.Time(recs[len(recs)-1].Time)); err != nil {
			t.Fatalf("rebuild drain: %v", err)
		}
	}
	if err := store.FlushParity(shift + ssd.Time(recs[len(recs)-1].Time)); err != nil {
		t.Fatalf("final parity flush: %v", err)
	}
	if err := store.CheckRain(); err != nil {
		t.Fatalf("stripe invariant broken at end: %v", err)
	}
	if lost := store.LostPages(); lost != 0 {
		t.Errorf("%d pages lost; a die failure under parity must lose nothing", lost)
	}
	if v := shadow.Verify(hr); len(v) > 0 {
		t.Errorf("%d oracle violations at end, first: %v", len(v), v[0])
	}
	return opsAtFail, opsEnd, crashed
}

// TestCrashDuringRainRebuild cuts power at five points spread across the
// post-die-failure window — landing mid-rebuild-reconstruction,
// mid-parity-flush or mid-host-op as the op index falls — and requires
// recovery to come back with a consistent stripe invariant, a rebuild
// plan that resumes where the durable state says, and a fully healed,
// zero-loss end state.
func TestCrashDuringRainRebuild(t *testing.T) {
	recs := rainTrace(8000, rainFootprint)
	for _, kind := range []Kind{KindDVP, KindDVPDedup} {
		t.Run(string(kind), func(t *testing.T) {
			cfg := rainTestConfig(kind)
			opsAtFail, opsEnd, _ := runRainCrash(t, cfg, recs, 0)
			if opsAtFail == 0 || opsEnd <= opsAtFail {
				t.Fatalf("pilot: die failed at bus op %d, trace ended at %d", opsAtFail, opsEnd)
			}
			window := opsEnd - opsAtFail
			for q := int64(1); q <= 5; q++ {
				crashAt := opsAtFail + q*window/6
				_, _, crashed := runRainCrash(t, cfg, recs, crashAt)
				if !crashed {
					t.Errorf("power loss at bus op %d never fired", crashAt)
				}
			}
		})
	}
}
