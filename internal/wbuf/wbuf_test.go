package wbuf

import (
	"testing"

	"zombiessd/internal/ftl"
	"zombiessd/internal/trace"
)

func h(id uint64) trace.Hash { return trace.HashOfValue(id) }

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("accepted zero capacity")
	}
	if _, err := New(-1); err == nil {
		t.Error("accepted negative capacity")
	}
}

func TestPutGetCoalesce(t *testing.T) {
	b, _ := New(4)
	if _, _, ev := b.Put(1, h(1)); ev {
		t.Fatal("eviction below capacity")
	}
	got, ok := b.Get(1)
	if !ok || got != h(1) {
		t.Fatalf("Get = (%v,%v)", got, ok)
	}
	// Overwrite coalesces: same page, new content, no eviction.
	if _, _, ev := b.Put(1, h(2)); ev {
		t.Fatal("coalescing write evicted")
	}
	if got, _ := b.Get(1); got != h(2) {
		t.Fatalf("coalesced content = %v, want h(2)", got)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
	st := b.Stats()
	if st.Puts != 2 || st.Coalesced != 1 || st.ReadHits != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionOrderIsWriteLRU(t *testing.T) {
	b, _ := New(2)
	b.Put(1, h(1))
	b.Put(2, h(2))
	b.Put(1, h(11)) // refresh page 1's write recency
	lpn, hash, ev := b.Put(3, h(3))
	if !ev || lpn != 2 || hash != h(2) {
		t.Fatalf("evicted (%d,%v,%v), want page 2", lpn, hash, ev)
	}
	// Reads must NOT refresh write recency.
	b.Get(1) // page 1 is still most recently WRITTEN? no — 1 refreshed, 3 newest
	lpn, _, ev = b.Put(4, h(4))
	if !ev || lpn != 1 {
		t.Fatalf("evicted %d, want 1 (reads must not refresh write order)", lpn)
	}
}

func TestMissesAndUnknownGet(t *testing.T) {
	b, _ := New(2)
	if _, ok := b.Get(9); ok {
		t.Fatal("hit on empty buffer")
	}
}

func TestDrain(t *testing.T) {
	b, _ := New(4)
	b.Put(3, h(3))
	b.Put(1, h(1))
	b.Put(2, h(2))
	out := b.Drain()
	if len(out) != 3 {
		t.Fatalf("drained %d pages, want 3", len(out))
	}
	if out[0].LPN != 3 || out[1].LPN != 1 || out[2].LPN != 2 {
		t.Fatalf("drain order wrong: %+v", out)
	}
	if b.Len() != 0 {
		t.Fatal("buffer not empty after drain")
	}
	if _, ok := b.Get(1); ok {
		t.Fatal("drained page still readable")
	}
	// Buffer stays usable after drain.
	b.Put(7, h(7))
	if b.Len() != 1 {
		t.Fatal("buffer unusable after drain")
	}
}

func TestCapacityInvariantUnderChurn(t *testing.T) {
	b, _ := New(8)
	evictions := 0
	for i := 0; i < 10000; i++ {
		lpn := ftl.LPN(i % 37)
		if _, _, ev := b.Put(lpn, h(uint64(i))); ev {
			evictions++
		}
		if b.Len() > 8 {
			t.Fatalf("capacity exceeded: %d", b.Len())
		}
	}
	if evictions == 0 {
		t.Fatal("no evictions under churn")
	}
	// Every buffered page's content must be its latest write.
	latest := make(map[ftl.LPN]trace.Hash)
	for i := 0; i < 10000; i++ {
		latest[ftl.LPN(i%37)] = h(uint64(i))
	}
	for _, pg := range b.Drain() {
		if latest[pg.LPN] != pg.Hash {
			t.Fatalf("page %d drained stale content", pg.LPN)
		}
	}
}

func TestStatsString(t *testing.T) {
	if (Stats{}).String() == "" {
		t.Error("empty stats string")
	}
}
