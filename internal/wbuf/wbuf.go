// Package wbuf implements a DRAM write-back buffer in the spirit of BPLRU
// (Kim & Ahn, FAST'08 — the paper's reference [7]): host writes are
// acknowledged from RAM and only reach flash when evicted, so rapid
// overwrites of the same logical page coalesce and never cost a program.
//
// The paper's Section VII argues that such "software approaches such as
// aggressive caching ... cannot completely remove duplicate disk writes",
// so the dead-value pool stays useful behind a buffer; internal/sim wires
// this package in front of any device to test exactly that claim.
package wbuf

import (
	"fmt"

	"zombiessd/internal/ftl"
	"zombiessd/internal/trace"
)

// node is one buffered dirty page in the intrusive LRU list.
type node struct {
	lpn        ftl.LPN
	hash       trace.Hash
	prev, next *node
}

// Buffer is a fixed-capacity write-back buffer of dirty logical pages.
// The zero value is not usable; construct with New.
type Buffer struct {
	capacity int
	pages    map[ftl.LPN]*node
	head     *node // LRU end
	tail     *node // MRU end

	stats Stats
}

// Stats counts buffer activity.
type Stats struct {
	Puts      int64 // host writes entering the buffer
	Coalesced int64 // writes absorbed by an already-buffered page
	Evictions int64 // dirty pages pushed to flash
	ReadHits  int64 // reads served from the buffer
}

// String renders the counters.
func (s Stats) String() string {
	return fmt.Sprintf("puts=%d coalesced=%d evictions=%d readHits=%d",
		s.Puts, s.Coalesced, s.Evictions, s.ReadHits)
}

// New returns a Buffer holding at most capacity dirty pages.
func New(capacity int) (*Buffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("wbuf: capacity must be positive, got %d", capacity)
	}
	return &Buffer{
		capacity: capacity,
		pages:    make(map[ftl.LPN]*node, capacity),
	}, nil
}

// Len returns the number of buffered dirty pages.
func (b *Buffer) Len() int { return len(b.pages) }

// Stats returns cumulative counters.
func (b *Buffer) Stats() Stats { return b.stats }

// Put buffers a write of h to lpn. When the buffer is full, the least
// recently written dirty page is evicted and returned for flushing.
func (b *Buffer) Put(lpn ftl.LPN, h trace.Hash) (evictLPN ftl.LPN, evictHash trace.Hash, evicted bool) {
	b.stats.Puts++
	if n, ok := b.pages[lpn]; ok {
		// Overwrite coalesces in RAM: the older content never reaches
		// flash at all.
		b.stats.Coalesced++
		n.hash = h
		b.moveToTail(n)
		return 0, trace.Hash{}, false
	}
	n := &node{lpn: lpn, hash: h}
	b.pages[lpn] = n
	b.pushTail(n)
	if len(b.pages) <= b.capacity {
		return 0, trace.Hash{}, false
	}
	victim := b.head
	b.remove(victim)
	delete(b.pages, victim.lpn)
	b.stats.Evictions++
	return victim.lpn, victim.hash, true
}

// Get returns the buffered content of lpn, if dirty in the buffer. Reads
// do not change eviction order (the buffer orders by write recency, as
// BPLRU's block-level padding concerns writes).
func (b *Buffer) Get(lpn ftl.LPN) (trace.Hash, bool) {
	n, ok := b.pages[lpn]
	if !ok {
		return trace.Hash{}, false
	}
	b.stats.ReadHits++
	return n.hash, true
}

// Drain removes and returns every dirty page, LRU first, for shutdown-style
// flushing.
func (b *Buffer) Drain() []struct {
	LPN  ftl.LPN
	Hash trace.Hash
} {
	out := make([]struct {
		LPN  ftl.LPN
		Hash trace.Hash
	}, 0, len(b.pages))
	for n := b.head; n != nil; n = n.next {
		out = append(out, struct {
			LPN  ftl.LPN
			Hash trace.Hash
		}{n.lpn, n.hash})
	}
	b.pages = make(map[ftl.LPN]*node, b.capacity)
	b.head, b.tail = nil, nil
	return out
}

func (b *Buffer) pushTail(n *node) {
	n.prev, n.next = b.tail, nil
	if b.tail != nil {
		b.tail.next = n
	} else {
		b.head = n
	}
	b.tail = n
}

func (b *Buffer) remove(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		b.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (b *Buffer) moveToTail(n *node) {
	if b.tail == n {
		return
	}
	b.remove(n)
	b.pushTail(n)
}
