package analysis

import (
	"sort"

	"zombiessd/internal/core"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// LRUSweepPoint is one bar of Fig 5: the number of writes actually
// performed when a dead-value buffer of the given capacity short-circuits
// matching writes. Capacity 0 means the infinite (ideal) buffer.
type LRUSweepPoint struct {
	Capacity int
	Writes   int64
	Hits     int64
}

// replayPool drives a dead-value pool with the write stream of recs (no SSD
// timing, as in Section III-A) and returns performed writes and pool hits.
func replayPool(recs []trace.Record, pool core.Pool, ledger *core.Ledger) (writes, hits int64) {
	pages := make(map[uint64]struct {
		h   trace.Hash
		ppn ssd.PPN
	})
	nextPPN := ssd.PPN(0)
	var tick core.Tick
	for _, r := range recs {
		if r.Op != trace.OpWrite {
			continue
		}
		tick++
		ledger.Bump(r.Hash)
		if old, ok := pages[r.LBA]; ok {
			pool.Insert(old.h, old.ppn, tick)
		}
		if ppn, ok := pool.Lookup(r.Hash, tick); ok {
			hits++
			pages[r.LBA] = struct {
				h   trace.Hash
				ppn ssd.PPN
			}{r.Hash, ppn}
			continue
		}
		writes++
		pages[r.LBA] = struct {
			h   trace.Hash
			ppn ssd.PPN
		}{r.Hash, nextPPN}
		nextPPN++
	}
	return writes, hits
}

// LRUWriteSweep returns Fig 5: performed writes for LRU dead-value buffers
// of each capacity (entries), plus the infinite buffer when 0 is included.
func LRUWriteSweep(recs []trace.Record, capacities []int) []LRUSweepPoint {
	out := make([]LRUSweepPoint, 0, len(capacities))
	for _, c := range capacities {
		ledger := core.NewLedger()
		var pool core.Pool
		if c == 0 {
			pool = core.NewInfinitePool(ledger)
		} else {
			pool = core.NewLRUPool(c, ledger)
		}
		w, h := replayPool(recs, pool, ledger)
		out = append(out, LRUSweepPoint{Capacity: c, Writes: w, Hits: h})
	}
	return out
}

// MQWriteSweep mirrors LRUWriteSweep with the paper's MQ pool, for the
// policy ablation.
func MQWriteSweep(recs []trace.Record, capacities []int, queues int) []LRUSweepPoint {
	out := make([]LRUSweepPoint, 0, len(capacities))
	for _, c := range capacities {
		ledger := core.NewLedger()
		var pool core.Pool
		if c == 0 {
			pool = core.NewInfinitePool(ledger)
		} else {
			pool = core.NewMQPool(core.MQConfig{Queues: queues, Capacity: c, DefaultLifetime: 8192}, ledger)
		}
		w, h := replayPool(recs, pool, ledger)
		out = append(out, LRUSweepPoint{Capacity: c, Writes: w, Hits: h})
	}
	return out
}

// DegreeMisses is one bar of Fig 6: the average number of avoidable LRU
// misses per value, for values of one popularity degree. A miss is
// avoidable when the infinite buffer would have serviced the write but the
// bounded LRU buffer did not.
type DegreeMisses struct {
	Degree    int64
	Values    int64
	AvgMisses float64
}

// LRUMissByPopularity runs the bounded LRU buffer and the infinite buffer
// in lockstep over recs and reports avoidable misses binned by the value's
// final popularity degree (clamped at maxDegree), ascending (Fig 6).
func LRUMissByPopularity(recs []trace.Record, capacity int, maxDegree int64) []DegreeMisses {
	if maxDegree < 1 {
		maxDegree = 1
	}
	ledgerL := core.NewLedger()
	lru := core.NewLRUPool(capacity, ledgerL)
	ledgerI := core.NewLedger()
	ideal := core.NewInfinitePool(ledgerI)

	type pageCopy struct {
		h    trace.Hash
		lppn ssd.PPN
		ippn ssd.PPN
	}
	pages := make(map[uint64]pageCopy)
	misses := make(map[trace.Hash]int64)
	writesPerValue := make(map[trace.Hash]int64)
	nextL, nextI := ssd.PPN(0), ssd.PPN(0)
	var tick core.Tick
	for _, r := range recs {
		if r.Op != trace.OpWrite {
			continue
		}
		tick++
		ledgerL.Bump(r.Hash)
		ledgerI.Bump(r.Hash)
		writesPerValue[r.Hash]++
		if old, ok := pages[r.LBA]; ok {
			lru.Insert(old.h, old.lppn, tick)
			ideal.Insert(old.h, old.ippn, tick)
		}
		var cp pageCopy
		cp.h = r.Hash
		lp, lruHit := lru.Lookup(r.Hash, tick)
		ip, idealHit := ideal.Lookup(r.Hash, tick)
		if lruHit {
			cp.lppn = lp
		} else {
			cp.lppn = nextL
			nextL++
		}
		if idealHit {
			cp.ippn = ip
		} else {
			cp.ippn = nextI
			nextI++
		}
		if idealHit && !lruHit {
			misses[r.Hash]++
		}
		pages[r.LBA] = cp
	}

	type acc struct{ values, misses int64 }
	bins := make(map[int64]*acc)
	for h, w := range writesPerValue {
		d := w
		if d > maxDegree {
			d = maxDegree
		}
		a := bins[d]
		if a == nil {
			a = &acc{}
			bins[d] = a
		}
		a.values++
		a.misses += misses[h]
	}
	degrees := make([]int64, 0, len(bins))
	for d := range bins {
		degrees = append(degrees, d)
	}
	sort.Slice(degrees, func(i, j int) bool { return degrees[i] < degrees[j] })
	out := make([]DegreeMisses, 0, len(degrees))
	for _, d := range degrees {
		a := bins[d]
		out = append(out, DegreeMisses{
			Degree:    d,
			Values:    a.values,
			AvgMisses: float64(a.misses) / float64(a.values),
		})
	}
	return out
}
