package analysis

import (
	"zombiessd/internal/trace"
)

// ReuseReport is Fig 1 for one trace: with an infinite garbage buffer, the
// fraction of writes that a garbage page could have serviced — raw, and on
// a deduplicated store (where a page only dies when its last logical
// reference leaves, so both the opportunity and the write base shrink).
type ReuseReport struct {
	TotalWrites int64

	// Raw (non-deduplicated) store.
	RawGarbageHits int64

	// Deduplicated store.
	DedupAbsorbed    int64 // writes removed by dedup itself (live duplicate)
	DedupGarbageHits int64 // writes a garbage page serviced on top of dedup
}

// RawReuseProb returns the Fig 1 bar for the raw store: the probability an
// incoming write can be serviced from a (boundless) garbage pool.
func (r ReuseReport) RawReuseProb() float64 {
	if r.TotalWrites == 0 {
		return 0
	}
	return float64(r.RawGarbageHits) / float64(r.TotalWrites)
}

// DedupReuseProb returns the Fig 1 "after deduplication" bar.
func (r ReuseReport) DedupReuseProb() float64 {
	if r.TotalWrites == 0 {
		return 0
	}
	return float64(r.DedupGarbageHits) / float64(r.TotalWrites)
}

// ReuseOpportunity replays recs against two boundless bookkeeping models —
// a normal store and a deduplicated store — and counts how many writes a
// garbage page could have absorbed in each (Fig 1). Reads are ignored.
func ReuseOpportunity(recs []trace.Record) ReuseReport {
	var rep ReuseReport

	// Raw store: one physical copy per logical page; every overwrite makes
	// garbage; an incoming write consumes one garbage copy if available.
	rawPage := make(map[uint64]trace.Hash)
	rawGarbage := make(map[trace.Hash]int64)

	// Dedup store: values are reference-counted; a value's one physical
	// copy becomes garbage only at refcount zero.
	dedupPage := make(map[uint64]trace.Hash)
	refs := make(map[trace.Hash]int64)
	dedupGarbage := make(map[trace.Hash]int64)

	for _, r := range recs {
		if r.Op != trace.OpWrite {
			continue
		}
		rep.TotalWrites++

		// ---- raw model ----
		if old, ok := rawPage[r.LBA]; ok {
			rawGarbage[old]++
		}
		if rawGarbage[r.Hash] > 0 {
			rawGarbage[r.Hash]--
			rep.RawGarbageHits++
		}
		rawPage[r.LBA] = r.Hash

		// ---- dedup model ----
		if old, ok := dedupPage[r.LBA]; ok {
			if old == r.Hash {
				// Identical overwrite: dedup absorbs it, nothing changes.
				rep.DedupAbsorbed++
				continue
			}
			refs[old]--
			if refs[old] == 0 {
				dedupGarbage[old]++
			}
		}
		switch {
		case refs[r.Hash] > 0:
			rep.DedupAbsorbed++
			refs[r.Hash]++
		case dedupGarbage[r.Hash] > 0:
			dedupGarbage[r.Hash]--
			rep.DedupGarbageHits++
			refs[r.Hash] = 1
		default:
			refs[r.Hash] = 1
		}
		dedupPage[r.LBA] = r.Hash
	}
	return rep
}
