package analysis

import (
	"math"
	"testing"

	"zombiessd/internal/trace"
	"zombiessd/internal/workload"
)

func w(lba, val uint64) trace.Record {
	return trace.Record{Op: trace.OpWrite, LBA: lba, Hash: trace.HashOfValue(val)}
}

func r(lba, val uint64) trace.Record {
	return trace.Record{Op: trace.OpRead, LBA: lba, Hash: trace.HashOfValue(val)}
}

func TestLifecycleCreationDeathRebirth(t *testing.T) {
	// Value 1: created at write 1, dies at write 2, reborn at write 3.
	recs := []trace.Record{
		w(0, 1), // write #1: create value 1 at LBA 0
		w(0, 2), // write #2: value 1 dies
		w(5, 1), // write #3: value 1 reborn at LBA 5
		r(5, 1), // reads are ignored
	}
	l := AnalyzeLifecycle(recs)
	if l.TotalWrites != 3 {
		t.Fatalf("TotalWrites = %d, want 3", l.TotalWrites)
	}
	v1 := l.Values[trace.HashOfValue(1)]
	if v1.Writes != 2 || v1.Deaths != 1 || v1.Rebirths != 1 {
		t.Fatalf("value 1 stats = %+v", v1)
	}
	if v1.AvgCreateToDeath() != 1 { // died one write after creation
		t.Errorf("AvgCreateToDeath = %g, want 1", v1.AvgCreateToDeath())
	}
	if v1.AvgDeathToRebirth() != 1 { // reborn one write after death
		t.Errorf("AvgDeathToRebirth = %g, want 1", v1.AvgDeathToRebirth())
	}
	v2 := l.Values[trace.HashOfValue(2)]
	if v2.Writes != 1 || v2.Deaths != 0 || v2.Rebirths != 0 {
		t.Fatalf("value 2 stats = %+v", v2)
	}
}

func TestLifecycleNoRebirthWhileLive(t *testing.T) {
	// Value 1 written to two LBAs: the second write is not a rebirth (a
	// copy is still live).
	recs := []trace.Record{w(0, 1), w(1, 1)}
	l := AnalyzeLifecycle(recs)
	v := l.Values[trace.HashOfValue(1)]
	if v.Rebirths != 0 {
		t.Fatalf("rebirth counted while value live: %+v", v)
	}
	if v.Writes != 2 {
		t.Fatalf("Writes = %d, want 2", v.Writes)
	}
}

func TestInvalidationCDF(t *testing.T) {
	// Three values: 0, 1 and 2 invalidations.
	recs := []trace.Record{
		w(0, 1), w(0, 2), // value 1: 1 death
		w(1, 3), w(1, 2), w(1, 3), // value 3: dies twice? no — 3 dies once, 2 dies once
	}
	// Deaths: v1:1 (overwritten by 2), v3: first copy dies (overwritten by
	// 2), v2 at LBA1 dies (overwritten by 3). v2 at LBA0 still live.
	l := AnalyzeLifecycle(recs)
	cdf := l.InvalidationCDF()
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	last := cdf[len(cdf)-1]
	if last.Fraction != 1.0 {
		t.Errorf("CDF does not reach 1.0: %+v", cdf)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Fraction < cdf[i-1].Fraction || cdf[i].X <= cdf[i-1].X {
			t.Fatalf("CDF not monotone: %+v", cdf)
		}
	}
}

func TestConcentrationCurve(t *testing.T) {
	// 10 values: one hot value with 91 writes, nine with 1 write each.
	recs := make([]trace.Record, 0, 100)
	for i := 0; i < 91; i++ {
		recs = append(recs, w(uint64(i%7), 1))
	}
	for v := uint64(2); v <= 10; v++ {
		recs = append(recs, w(uint64(10+v), v))
	}
	l := AnalyzeLifecycle(recs)
	curve := l.Concentration(WritesMetric, 10)
	if len(curve) != 10 {
		t.Fatalf("curve has %d points, want 10", len(curve))
	}
	// The top 10% of values (the hot one) must hold 91% of writes.
	first := curve[0]
	if math.Abs(first.ValueFrac-0.1) > 1e-9 {
		t.Fatalf("first point ValueFrac = %g, want 0.1", first.ValueFrac)
	}
	if math.Abs(first.MetricFrac-0.91) > 1e-9 {
		t.Errorf("top-10%% write share = %g, want 0.91", first.MetricFrac)
	}
	lastP := curve[len(curve)-1]
	if lastP.ValueFrac != 1 || lastP.MetricFrac != 1 {
		t.Errorf("curve does not end at (1,1): %+v", lastP)
	}
}

func TestPopularityTimingBins(t *testing.T) {
	// A popular value that cycles quickly and an unpopular one that never
	// dies: Fig 4's claim is the popular one shows short lifetimes.
	recs := []trace.Record{
		w(0, 1), w(0, 9), w(1, 1), w(1, 9), w(2, 1), // value 1: 3 writes, 2 deaths, 2 rebirths
		w(9, 7), // value 7: 1 write, never dies
	}
	l := AnalyzeLifecycle(recs)
	bins := l.PopularityTiming(64)
	if len(bins) == 0 {
		t.Fatal("no bins")
	}
	byDegree := make(map[int64]PopularityBin)
	for _, b := range bins {
		byDegree[b.Degree] = b
	}
	if b, ok := byDegree[3]; !ok || b.Values != 1 || b.AvgRebirths != 2 {
		t.Errorf("degree-3 bin = %+v", b)
	}
	if b, ok := byDegree[1]; !ok || b.AvgRebirths != 0 {
		t.Errorf("degree-1 bin = %+v", b)
	}
	// Degrees above the clamp collapse into the top bin.
	many := make([]trace.Record, 0, 200)
	for i := 0; i < 200; i++ {
		many = append(many, w(uint64(i%3), 5))
	}
	bins2 := AnalyzeLifecycle(many).PopularityTiming(8)
	if len(bins2) != 1 || bins2[0].Degree != 8 {
		t.Errorf("clamped bins = %+v, want single degree-8 bin", bins2)
	}
}

func TestReuseOpportunityRaw(t *testing.T) {
	recs := []trace.Record{
		w(0, 1), // create
		w(0, 2), // value 1 → garbage
		w(5, 1), // reusable from garbage!
		w(6, 3), // cold value, no reuse
	}
	rep := ReuseOpportunity(recs)
	if rep.TotalWrites != 4 {
		t.Fatalf("TotalWrites = %d", rep.TotalWrites)
	}
	if rep.RawGarbageHits != 1 {
		t.Errorf("RawGarbageHits = %d, want 1", rep.RawGarbageHits)
	}
	if got := rep.RawReuseProb(); got != 0.25 {
		t.Errorf("RawReuseProb = %g, want 0.25", got)
	}
}

func TestReuseOpportunityDedupSemantics(t *testing.T) {
	recs := []trace.Record{
		w(0, 1), // create value 1
		w(1, 1), // dedup absorbs (live duplicate)
		w(0, 2), // ref 2→1: still live, no garbage yet
		w(1, 3), // ref 1→0: value 1's physical copy becomes garbage
		w(2, 1), // garbage reuse on the deduplicated store
	}
	rep := ReuseOpportunity(recs)
	if rep.DedupAbsorbed != 1 {
		t.Errorf("DedupAbsorbed = %d, want 1", rep.DedupAbsorbed)
	}
	if rep.DedupGarbageHits != 1 {
		t.Errorf("DedupGarbageHits = %d, want 1", rep.DedupGarbageHits)
	}
	// Raw model sees more garbage reuse than the dedup model on the same
	// trace (Fig 1's observation).
	if rep.RawGarbageHits < rep.DedupGarbageHits {
		t.Errorf("raw hits %d < dedup hits %d", rep.RawGarbageHits, rep.DedupGarbageHits)
	}
}

func TestReuseIdenticalOverwrite(t *testing.T) {
	recs := []trace.Record{w(0, 1), w(0, 1)}
	rep := ReuseOpportunity(recs)
	if rep.DedupAbsorbed != 1 {
		t.Errorf("identical overwrite not absorbed by dedup: %+v", rep)
	}
	if rep.RawGarbageHits != 1 {
		// Raw model: the old copy becomes garbage and the same write can
		// reuse it.
		t.Errorf("RawGarbageHits = %d, want 1", rep.RawGarbageHits)
	}
}

func TestLRUWriteSweepMonotone(t *testing.T) {
	p, _ := workload.ProfileByName("mail")
	recs, err := workload.Generate(p, 30000, 13)
	if err != nil {
		t.Fatal(err)
	}
	points := LRUWriteSweep(recs, []int{50, 200, 1000, 5000, 0})
	if len(points) != 5 {
		t.Fatalf("got %d points", len(points))
	}
	// Larger buffers can only reduce writes; infinite (last) is the floor.
	for i := 1; i < len(points); i++ {
		if points[i].Writes > points[i-1].Writes {
			t.Errorf("writes increased with capacity: %+v", points)
		}
	}
	s := trace.Collect(recs)
	if points[0].Writes > s.Writes {
		t.Errorf("performed writes %d exceed trace writes %d", points[0].Writes, s.Writes)
	}
	if points[len(points)-1].Hits == 0 {
		t.Error("infinite buffer had zero hits on mail")
	}
}

func TestMQSweepTracksLRU(t *testing.T) {
	// Offline sweep sanity: the MQ pool must be in the same league as LRU
	// on a mail-like trace (the strict MQ>LRU comparison lives in
	// internal/core on a workload crafted to exercise promotion).
	p, _ := workload.ProfileByName("mail")
	recs, err := workload.Generate(p, 40000, 29)
	if err != nil {
		t.Fatal(err)
	}
	caps := []int{200}
	lru := LRUWriteSweep(recs, caps)
	mq := MQWriteSweep(recs, caps, 8)
	if mq[0].Hits == 0 {
		t.Fatal("MQ sweep produced no hits")
	}
	if float64(mq[0].Writes) > float64(lru[0].Writes)*1.05 {
		t.Errorf("MQ writes %d more than 5%% above LRU writes %d", mq[0].Writes, lru[0].Writes)
	}
}

func TestLRUMissByPopularity(t *testing.T) {
	p, _ := workload.ProfileByName("mail")
	recs, err := workload.Generate(p, 30000, 31)
	if err != nil {
		t.Fatal(err)
	}
	bins := LRUMissByPopularity(recs, 100, 32)
	if len(bins) == 0 {
		t.Fatal("no bins")
	}
	var withMisses int
	for i := 1; i < len(bins); i++ {
		if bins[i].Degree <= bins[i-1].Degree {
			t.Fatal("bins not ascending")
		}
	}
	for _, b := range bins {
		if b.AvgMisses > 0 {
			withMisses++
		}
		if b.Values <= 0 || b.AvgMisses < 0 {
			t.Fatalf("bad bin %+v", b)
		}
	}
	if withMisses == 0 {
		t.Error("tiny LRU buffer produced no avoidable misses on mail")
	}
	// Fig 6's point: popular values suffer misses under plain LRU. The
	// highest-degree bins must show avoidable misses.
	top := bins[len(bins)-1]
	if top.AvgMisses == 0 {
		t.Errorf("top popularity bin has no misses: %+v", top)
	}
}

func TestEmptyInputsSafe(t *testing.T) {
	l := AnalyzeLifecycle(nil)
	if l.UniqueValues() != 0 || l.InvalidationCDF() != nil || l.Concentration(WritesMetric, 10) != nil {
		t.Error("empty lifecycle not empty")
	}
	if got := ReuseOpportunity(nil); got.RawReuseProb() != 0 || got.DedupReuseProb() != 0 {
		t.Error("empty reuse not zero")
	}
	if pts := LRUWriteSweep(nil, []int{10}); pts[0].Writes != 0 {
		t.Error("empty sweep not zero")
	}
	if bins := LRUMissByPopularity(nil, 10, 8); len(bins) != 0 {
		t.Error("empty miss bins not empty")
	}
}

func TestLifecycleConservationInvariants(t *testing.T) {
	// For any trace: per value, deaths ≤ writes, rebirths ≤ deaths, and a
	// value's writes minus its deaths equals its currently live copies
	// (every written copy is either dead or still live); totals add up.
	p, _ := workload.ProfileByName("web")
	recs, err := workload.Generate(p, 25_000, 17)
	if err != nil {
		t.Fatal(err)
	}
	l := AnalyzeLifecycle(recs)
	liveByValue := make(map[trace.Hash]int64)
	pageVal := make(map[uint64]trace.Hash)
	var writes int64
	for _, r := range recs {
		if r.Op != trace.OpWrite {
			continue
		}
		writes++
		if old, ok := pageVal[r.LBA]; ok {
			liveByValue[old]--
		}
		pageVal[r.LBA] = r.Hash
		liveByValue[r.Hash]++
	}
	if l.TotalWrites != writes {
		t.Fatalf("TotalWrites = %d, want %d", l.TotalWrites, writes)
	}
	var sumWrites int64
	for h, v := range l.Values {
		sumWrites += v.Writes
		if v.Deaths > v.Writes {
			t.Fatalf("value %v: deaths %d > writes %d", h, v.Deaths, v.Writes)
		}
		if v.Rebirths > v.Deaths {
			t.Fatalf("value %v: rebirths %d > deaths %d", h, v.Rebirths, v.Deaths)
		}
		if live := v.Writes - v.Deaths; live != liveByValue[h] {
			t.Fatalf("value %v: writes-deaths = %d, live copies = %d", h, live, liveByValue[h])
		}
	}
	if sumWrites != writes {
		t.Fatalf("Σ per-value writes = %d, want %d", sumWrites, writes)
	}
}
