// Package analysis provides the offline, trace-only studies of Section II
// and III of the paper: value life-cycle tracking (creation → death →
// rebirth), the invalidation/write/rebirth distributions (Figs 2–3), the
// popularity-vs-timing relations (Fig 4), the infinite-buffer reuse
// opportunity with and without deduplication (Fig 1), and the LRU buffer
// sweeps (Figs 5–6). These studies replay a trace against bookkeeping
// structures only — no SSD timing is involved, exactly as the paper's
// Section II states ("done by analyzing the traces").
package analysis

import (
	"sort"

	"zombiessd/internal/trace"
)

// ValueStats accumulates the life-cycle of one unique value. Time is
// measured in writes, as in the paper ("we report the number of writes
// occurring between the two events as our metric").
type ValueStats struct {
	Writes   int64 // popularity degree
	Deaths   int64 // invalidations of copies of this value
	Rebirths int64 // writes of this value arriving while it was fully dead

	CreateToDeathSum  int64 // Σ write-distance from a copy's creation to its death
	DeathToRebirthSum int64 // Σ write-distance from last full death to rebirth

	liveCopies int64
	lastDeath  int64 // write index of the death that left no live copy
}

// AvgCreateToDeath returns the mean number of writes a copy of this value
// stayed live, or 0 with no deaths.
func (v *ValueStats) AvgCreateToDeath() float64 {
	if v.Deaths == 0 {
		return 0
	}
	return float64(v.CreateToDeathSum) / float64(v.Deaths)
}

// AvgDeathToRebirth returns the mean number of writes between a full death
// and the following rebirth, or 0 with no rebirths.
func (v *ValueStats) AvgDeathToRebirth() float64 {
	if v.Rebirths == 0 {
		return 0
	}
	return float64(v.DeathToRebirthSum) / float64(v.Rebirths)
}

// Lifecycle is the outcome of one life-cycle pass over a trace.
type Lifecycle struct {
	TotalWrites int64
	Values      map[trace.Hash]*ValueStats
}

// AnalyzeLifecycle replays the write stream of recs and tracks every
// value's creations, deaths and rebirths. Reads are ignored — the paper's
// life-cycle is defined over writes and invalidations only.
func AnalyzeLifecycle(recs []trace.Record) *Lifecycle {
	type copyInfo struct {
		val     trace.Hash
		created int64
	}
	l := &Lifecycle{Values: make(map[trace.Hash]*ValueStats)}
	pages := make(map[uint64]copyInfo)
	for _, r := range recs {
		if r.Op != trace.OpWrite {
			continue
		}
		l.TotalWrites++
		now := l.TotalWrites

		// Death of the copy this write supersedes.
		if old, ok := pages[r.LBA]; ok {
			vs := l.Values[old.val]
			vs.Deaths++
			vs.CreateToDeathSum += now - old.created
			vs.liveCopies--
			if vs.liveCopies == 0 {
				vs.lastDeath = now
			}
		}

		// Write (and possibly rebirth) of the incoming value.
		vs := l.Values[r.Hash]
		if vs == nil {
			vs = &ValueStats{}
			l.Values[r.Hash] = vs
		}
		if vs.Writes > 0 && vs.liveCopies == 0 {
			vs.Rebirths++
			vs.DeathToRebirthSum += now - vs.lastDeath
		}
		vs.Writes++
		vs.liveCopies++
		pages[r.LBA] = copyInfo{val: r.Hash, created: now}
	}
	return l
}

// UniqueValues returns the number of distinct values written.
func (l *Lifecycle) UniqueValues() int { return len(l.Values) }

// CDFPoint is one point of a cumulative distribution: the fraction of the
// population with metric ≤ X.
type CDFPoint struct {
	X        int64
	Fraction float64
}

// InvalidationCDF returns Fig 2: for each invalidation count x, the
// fraction of values with at most x invalidations. The point at x = 0 is
// the fraction of values still fully live.
func (l *Lifecycle) InvalidationCDF() []CDFPoint {
	return cdfOf(l.Values, func(v *ValueStats) int64 { return v.Deaths })
}

// WriteCountCDF returns the CDF of per-value write counts.
func (l *Lifecycle) WriteCountCDF() []CDFPoint {
	return cdfOf(l.Values, func(v *ValueStats) int64 { return v.Writes })
}

// RebirthCDF returns the CDF of per-value rebirth counts.
func (l *Lifecycle) RebirthCDF() []CDFPoint {
	return cdfOf(l.Values, func(v *ValueStats) int64 { return v.Rebirths })
}

func cdfOf(values map[trace.Hash]*ValueStats, metric func(*ValueStats) int64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	counts := make(map[int64]int64)
	for _, v := range values {
		counts[metric(v)]++
	}
	xs := make([]int64, 0, len(counts))
	for x := range counts {
		xs = append(xs, x)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := make([]CDFPoint, 0, len(xs))
	var cum int64
	total := float64(len(values))
	for _, x := range xs {
		cum += counts[x]
		out = append(out, CDFPoint{X: x, Fraction: float64(cum) / total})
	}
	return out
}

// LorenzPoint is one point of a concentration curve: the top ValueFrac of
// values (sorted by write count, descending) account for MetricFrac of the
// metric's total.
type LorenzPoint struct {
	ValueFrac  float64
	MetricFrac float64
}

// Concentration returns Fig 3's curves: values sorted by write count
// descending, with the cumulative share of the chosen metric. points
// controls the curve resolution.
func (l *Lifecycle) Concentration(metric func(*ValueStats) int64, points int) []LorenzPoint {
	if len(l.Values) == 0 || points <= 0 {
		return nil
	}
	type pair struct{ writes, m int64 }
	vs := make([]pair, 0, len(l.Values))
	var total int64
	for _, v := range l.Values {
		vs = append(vs, pair{v.Writes, metric(v)})
		total += metric(v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].writes > vs[j].writes })
	out := make([]LorenzPoint, 0, points)
	var cum int64
	next := 1
	for i, p := range vs {
		cum += p.m
		for next <= points && (i+1)*points >= next*len(vs) {
			frac := 0.0
			if total > 0 {
				frac = float64(cum) / float64(total)
			}
			out = append(out, LorenzPoint{
				ValueFrac:  float64(i+1) / float64(len(vs)),
				MetricFrac: frac,
			})
			next++
		}
	}
	return out
}

// WritesMetric, DeathsMetric and RebirthsMetric select the quantity for
// Concentration (Fig 3 a/b/c).
func WritesMetric(v *ValueStats) int64   { return v.Writes }
func DeathsMetric(v *ValueStats) int64   { return v.Deaths }
func RebirthsMetric(v *ValueStats) int64 { return v.Rebirths }

// PopularityBin aggregates life-cycle timing for all values of one
// popularity degree (Fig 4). Degrees above maxDegree are clamped into the
// top bin.
type PopularityBin struct {
	Degree            int64 // write count (clamped)
	Values            int64
	AvgCreateToDeath  float64 // Fig 4a
	AvgDeathToRebirth float64 // Fig 4b
	AvgRebirths       float64 // Fig 4c
}

// PopularityTiming returns Fig 4's three series binned by popularity
// degree, ascending.
func (l *Lifecycle) PopularityTiming(maxDegree int64) []PopularityBin {
	if maxDegree < 1 {
		maxDegree = 1
	}
	type acc struct {
		values, deaths, rebirths          int64
		c2dSum, d2rSum, rebirthsPerValSum int64
	}
	bins := make(map[int64]*acc)
	for _, v := range l.Values {
		d := v.Writes
		if d > maxDegree {
			d = maxDegree
		}
		a := bins[d]
		if a == nil {
			a = &acc{}
			bins[d] = a
		}
		a.values++
		a.deaths += v.Deaths
		a.rebirths += v.Rebirths
		a.c2dSum += v.CreateToDeathSum
		a.d2rSum += v.DeathToRebirthSum
		a.rebirthsPerValSum += v.Rebirths
	}
	degrees := make([]int64, 0, len(bins))
	for d := range bins {
		degrees = append(degrees, d)
	}
	sort.Slice(degrees, func(i, j int) bool { return degrees[i] < degrees[j] })
	out := make([]PopularityBin, 0, len(degrees))
	for _, d := range degrees {
		a := bins[d]
		b := PopularityBin{Degree: d, Values: a.values}
		if a.deaths > 0 {
			b.AvgCreateToDeath = float64(a.c2dSum) / float64(a.deaths)
		}
		if a.rebirths > 0 {
			b.AvgDeathToRebirth = float64(a.d2rSum) / float64(a.rebirths)
		}
		b.AvgRebirths = float64(a.rebirthsPerValSum) / float64(a.values)
		out = append(out, b)
	}
	return out
}
