package recovery

import (
	"reflect"
	"testing"

	"zombiessd/internal/ftl"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

func hashOf(v uint64) trace.Hash { return trace.HashOfValue(v) }

// snap8 builds an 8-page snapshot exercising every scan rule:
//
//	page 0: LPN 1, seq 1  — superseded by page 1's reprogram
//	page 1: LPN 1, seq 5  — winner for LPN 1
//	page 2: LPN 2, seq 2  — claimed away by a journal revival, becomes
//	                        LPN 3's winner via journal (seq 6)
//	page 3: torn mid-program
//	page 4: bad block, never scanned
//	page 5: LPN 4, seq 3  — winner for LPN 4
//	page 6: empty (erased) — the stale journal target for LPN 5
//	page 7: LPN 5, seq 4  — winner for LPN 5 (its journal move is invalid)
func snap8() Snapshot {
	s := Snapshot{
		Pages: 8,
		OOB:   make([]ftl.OOB, 8),
		Bad:   make([]bool, 8),
	}
	prog := func(p int, lpn ftl.LPN, seq uint64) {
		s.OOB[p] = ftl.OOB{State: ftl.OOBProgrammed, LPN: lpn, Hash: hashOf(seq), Seq: seq}
	}
	prog(0, 1, 1)
	prog(1, 1, 5)
	prog(2, 2, 2)
	s.OOB[3] = ftl.OOB{State: ftl.OOBTorn}
	s.Bad[4] = true
	prog(5, 4, 3)
	prog(7, 5, 4)
	s.Journal = []ftl.Binding{
		{LPN: 3, PPN: 2, Seq: 6, Revived: true},  // revives page 2's content as LPN 3
		{LPN: 5, PPN: 6, Seq: 7, Revived: true},  // invalid: page 6 was erased
		{LPN: 9, PPN: 40, Seq: 8, Revived: true}, // invalid: PPN out of range
		{LPN: 9, PPN: 4, Seq: 9, Revived: true},  // invalid: bad block
		{LPN: 2, PPN: 0, Seq: 0, Revived: false}, // invalid: OOB seq 1 > record seq 0
	}
	return s
}

func TestBuildPlanLastWriterWins(t *testing.T) {
	plan, err := BuildPlan(snap8())
	if err != nil {
		t.Fatal(err)
	}
	want := []Winner{
		{LPN: 1, PPN: 1, Hash: hashOf(5), Seq: 5},
		{LPN: 2, PPN: 2, Hash: hashOf(2), Seq: 2},
		{LPN: 3, PPN: 2, Hash: hashOf(2), Seq: 6, Revived: true},
		{LPN: 4, PPN: 5, Hash: hashOf(3), Seq: 3},
		{LPN: 5, PPN: 7, Hash: hashOf(4), Seq: 4},
	}
	if !reflect.DeepEqual(plan.Winners, want) {
		t.Errorf("winners = %+v\nwant %+v", plan.Winners, want)
	}
	// Page 0 (superseded program) is the only zombie: pages 2 and 7 are
	// claimed, 3 is torn, 4 is bad, 6 is empty.
	wantG := []GarbagePage{{PPN: 0, LPN: 1, Hash: hashOf(1), Seq: 1}}
	if !reflect.DeepEqual(plan.Garbage, wantG) {
		t.Errorf("garbage = %+v\nwant %+v", plan.Garbage, wantG)
	}
	rep := plan.Report
	wantRep := Report{
		PagesScanned: 7, TornDiscarded: 1, BadSkipped: 1,
		JournalReplayed: 1, JournalDiscarded: 4,
		Winners: 5, Garbage: 1,
	}
	if rep != wantRep {
		t.Errorf("report = %+v\nwant %+v", rep, wantRep)
	}
	if got := rep.ScanCost(75 * ssd.Microsecond); got != 7*75*ssd.Microsecond {
		t.Errorf("ScanCost = %v, want %v", got, 7*75*ssd.Microsecond)
	}
}

func TestPlanPPNHelpers(t *testing.T) {
	plan, err := BuildPlan(snap8())
	if err != nil {
		t.Fatal(err)
	}
	// LPNs 2 and 3 share PPN 2; ValidPPNs dedupes it.
	if got, want := plan.ValidPPNs(), []ssd.PPN{1, 2, 5, 7}; !reflect.DeepEqual(got, want) {
		t.Errorf("ValidPPNs = %v, want %v", got, want)
	}
	if got, want := plan.GarbagePPNs(), []ssd.PPN{0}; !reflect.DeepEqual(got, want) {
		t.Errorf("GarbagePPNs = %v, want %v", got, want)
	}
}

func TestBuildPlanRejectsInvalidSnapshot(t *testing.T) {
	cases := []Snapshot{
		{Pages: -1},
		{Pages: 2, OOB: make([]ftl.OOB, 1), Bad: make([]bool, 2)},
		{Pages: 2, OOB: make([]ftl.OOB, 2), Bad: make([]bool, 3)},
	}
	for i, s := range cases {
		if _, err := BuildPlan(s); err == nil {
			t.Errorf("case %d: BuildPlan accepted invalid snapshot", i)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	orig := snap8()
	back, err := Decode(orig.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, orig) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, orig)
	}
	// Empty snapshot round-trips too.
	empty := Snapshot{OOB: []ftl.OOB{}, Journal: []ftl.Binding{}, Bad: []bool{}}
	back, err = Decode(empty.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Pages != 0 || len(back.OOB) != 0 || len(back.Journal) != 0 || len(back.Bad) != 0 {
		t.Errorf("empty round trip = %+v", back)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := snap8().Encode()
	mut := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":         {},
		"short":         good[:8],
		"bad magic":     mut(func(b []byte) []byte { b[0] = 'X'; return b }),
		"huge pages":    mut(func(b []byte) []byte { b[8] = 0xFF; b[9] = 0xFF; return b }),
		"bad oob state": mut(func(b []byte) []byte { b[16] = 99; return b }),
		"bad oob bool":  mut(func(b []byte) []byte { b[16+29] = 7; return b }),
		"truncated":     good[:len(good)-1],
		"trailing":      append(append([]byte(nil), good...), 0),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted corrupted input", name)
		}
	}
}
