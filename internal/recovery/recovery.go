// Package recovery rebuilds a crashed device's mapping state from the
// per-page out-of-band (OOB) metadata and the durable mapping journal —
// the simulated analogue of the full-device OOB scan a real page-mapped
// FTL performs after sudden power loss.
//
// The scan computes, for every logical page, the last writer to durably
// claim it: OOB records (stamped at program time) and journal records
// (appended on mapping-only updates such as zombie revivals and dedup
// reference binds) compete by monotonic sequence number, newest wins.
// Programmed pages no surviving logical page claims are garbage — exactly
// the population the dead-value pool indexes — so the plan also carries
// everything needed to re-seed the pool with warm zombies after recovery.
package recovery

import (
	"fmt"
	"sort"

	"zombiessd/internal/ftl"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// Snapshot is the durable state that survives power loss: every page's OOB
// area, the mapping journal, and the bad-block map (kept in NOR/metadata
// blocks on real drives). Volatile state — mapping tables, pool contents,
// popularity counters — is deliberately absent.
type Snapshot struct {
	Pages   int64
	OOB     []ftl.OOB
	Journal []ftl.Binding
	// Bad flags pages in retired blocks; the scan skips them entirely.
	Bad []bool
}

// SnapshotOf captures the durable state of store.
func SnapshotOf(store *ftl.Store) Snapshot {
	geo := store.Geometry()
	pages := geo.TotalPages()
	bad := make([]bool, pages)
	for p := int64(0); p < pages; p++ {
		bad[p] = store.BadBlock(geo.BlockOf(ssd.PPN(p)))
	}
	return Snapshot{
		Pages:   pages,
		OOB:     store.OOBSnapshot(),
		Journal: store.JournalSnapshot(),
		Bad:     bad,
	}
}

// Validate reports whether the snapshot is structurally sound.
func (s Snapshot) Validate() error {
	if s.Pages < 0 {
		return fmt.Errorf("recovery: negative page count %d", s.Pages)
	}
	if int64(len(s.OOB)) != s.Pages {
		return fmt.Errorf("recovery: %d OOB records for %d pages", len(s.OOB), s.Pages)
	}
	if int64(len(s.Bad)) != s.Pages {
		return fmt.Errorf("recovery: %d bad flags for %d pages", len(s.Bad), s.Pages)
	}
	return nil
}

// Winner is the recovered binding of one logical page: the newest durable
// record claiming it.
type Winner struct {
	LPN     ftl.LPN
	PPN     ssd.PPN
	Hash    trace.Hash
	Seq     uint64
	Revived bool // won via a journal revival, not a program
}

// GarbagePage is a programmed page no surviving logical page claims — a
// zombie candidate for re-seeding the dead-value pool. LPN and Hash come
// from its OOB: the last logical owner and content it was programmed with.
type GarbagePage struct {
	PPN  ssd.PPN
	LPN  ftl.LPN
	Hash trace.Hash
	Seq  uint64
}

// Report summarises the cost and findings of the scan.
type Report struct {
	PagesScanned     int64 // every non-bad page is read once
	TornDiscarded    int64 // pages interrupted mid-program or mid-erase
	BadSkipped       int64 // pages in retired blocks
	JournalReplayed  int   // journal records that survived validation
	JournalDiscarded int   // journal records invalidated by erase/reprogram
	Winners          int   // logical pages recovered
	Garbage          int   // zombie pages available to the pool
}

// ScanCost returns the flash time of the recovery scan: one read per
// scanned page.
func (r Report) ScanCost(readLatency ssd.Time) ssd.Time {
	return ssd.Time(r.PagesScanned) * readLatency
}

// Plan is the output of the recovery scan, ready to drive Store.Rebuild
// and mapper/pool reconstruction.
type Plan struct {
	// Winners holds one entry per recovered logical page, LPN-ascending.
	Winners []Winner
	// Garbage holds the unclaimed programmed pages, Seq-ascending (oldest
	// first, so pool insertion order mirrors death order).
	Garbage []GarbagePage
	Report  Report
}

// BuildPlan runs the last-writer-wins scan over snap.
//
// A journal record (L → P, seq) is valid only while page P still holds the
// program it referred to: P's OOB must be Programmed with Seq ≤ the
// record's. An erase clears the OOB and a reprogram raises its Seq above
// every older journal record, so stale bindings self-invalidate. Ties
// (impossible under the store's single sequence counter, but reachable
// from fuzzed snapshots) keep the earlier-scanned candidate.
func BuildPlan(snap Snapshot) (Plan, error) {
	if err := snap.Validate(); err != nil {
		return Plan{}, err
	}
	var rep Report
	best := make(map[ftl.LPN]Winner)
	claim := func(w Winner) {
		if w.LPN == ftl.InvalidLPN {
			return
		}
		if cur, ok := best[w.LPN]; !ok || w.Seq > cur.Seq {
			best[w.LPN] = w
		}
	}

	// Phase 1: the OOB scan proper — every page in a live block is read.
	for p := int64(0); p < snap.Pages; p++ {
		if snap.Bad[p] {
			rep.BadSkipped++
			continue
		}
		rep.PagesScanned++
		o := snap.OOB[p]
		switch o.State {
		case ftl.OOBTorn:
			rep.TornDiscarded++
		case ftl.OOBProgrammed:
			claim(Winner{LPN: o.LPN, PPN: ssd.PPN(p), Hash: o.Hash, Seq: o.Seq, Revived: o.Revived})
		}
	}

	// Phase 2: replay the mapping journal over the scan results.
	for _, r := range snap.Journal {
		p := int64(r.PPN)
		if p < 0 || p >= snap.Pages || snap.Bad[p] {
			rep.JournalDiscarded++
			continue
		}
		o := snap.OOB[p]
		if o.State != ftl.OOBProgrammed || o.Seq > r.Seq {
			rep.JournalDiscarded++
			continue
		}
		rep.JournalReplayed++
		claim(Winner{LPN: r.LPN, PPN: r.PPN, Hash: o.Hash, Seq: r.Seq, Revived: r.Revived})
	}

	plan := Plan{Winners: make([]Winner, 0, len(best))}
	claimed := make(map[ssd.PPN]bool, len(best))
	for _, w := range best {
		plan.Winners = append(plan.Winners, w)
		claimed[w.PPN] = true
	}
	sort.Slice(plan.Winners, func(i, j int) bool {
		return plan.Winners[i].LPN < plan.Winners[j].LPN
	})

	// Phase 3: programmed pages nobody claims are zombies.
	for p := int64(0); p < snap.Pages; p++ {
		if snap.Bad[p] || snap.OOB[p].State != ftl.OOBProgrammed || claimed[ssd.PPN(p)] {
			continue
		}
		o := snap.OOB[p]
		plan.Garbage = append(plan.Garbage, GarbagePage{PPN: ssd.PPN(p), LPN: o.LPN, Hash: o.Hash, Seq: o.Seq})
	}
	sort.Slice(plan.Garbage, func(i, j int) bool {
		return plan.Garbage[i].Seq < plan.Garbage[j].Seq
	})

	rep.Winners = len(plan.Winners)
	rep.Garbage = len(plan.Garbage)
	plan.Report = rep
	return plan, nil
}

// ValidPPNs returns the winner pages (unique, ascending) — the `valid`
// argument to Store.Rebuild.
func (p Plan) ValidPPNs() []ssd.PPN {
	seen := make(map[ssd.PPN]bool, len(p.Winners))
	out := make([]ssd.PPN, 0, len(p.Winners))
	for _, w := range p.Winners {
		if !seen[w.PPN] {
			seen[w.PPN] = true
			out = append(out, w.PPN)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GarbagePPNs returns the zombie pages — the `garbage` argument to
// Store.Rebuild.
func (p Plan) GarbagePPNs() []ssd.PPN {
	out := make([]ssd.PPN, len(p.Garbage))
	for i, g := range p.Garbage {
		out[i] = g.PPN
	}
	return out
}
