// Package recovery rebuilds a crashed device's mapping state from the
// per-page out-of-band (OOB) metadata and the durable mapping journal —
// the simulated analogue of the full-device OOB scan a real page-mapped
// FTL performs after sudden power loss.
//
// The scan computes, for every logical page, the last writer to durably
// claim it: OOB records (stamped at program time) and journal records
// (appended on mapping-only updates such as zombie revivals and dedup
// reference binds) compete by monotonic sequence number, newest wins.
// Programmed pages no surviving logical page claims are garbage — exactly
// the population the dead-value pool indexes — so the plan also carries
// everything needed to re-seed the pool with warm zombies after recovery.
package recovery

import (
	"fmt"
	"sort"

	"zombiessd/internal/ftl"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// Snapshot is the durable state that survives power loss: every page's OOB
// area, the mapping journal, and the bad-block map (kept in NOR/metadata
// blocks on real drives). Volatile state — mapping tables, pool contents,
// popularity counters — is deliberately absent.
type Snapshot struct {
	Pages   int64
	OOB     []ftl.OOB
	Journal []ftl.Binding
	// Bad flags pages in retired blocks; the scan skips them entirely.
	Bad []bool
	// Dead flags pages on failed dies (nil when no die has failed). Their
	// blocks cannot be read, but the mapping claims their OOB records
	// carry are modeled as recoverable — page metadata is tiny and RAIN
	// parity (or the journal) preserves it — so winners on dead blocks
	// survive as reconstruction targets while dead garbage never re-seeds
	// the pool.
	Dead []bool
}

// SnapshotOf captures the durable state of store.
func SnapshotOf(store *ftl.Store) Snapshot {
	geo := store.Geometry()
	pages := geo.TotalPages()
	bad := make([]bool, pages)
	var dead []bool
	for p := int64(0); p < pages; p++ {
		b := geo.BlockOf(ssd.PPN(p))
		bad[p] = store.BadBlock(b)
		if store.DeadBlock(b) {
			if dead == nil {
				dead = make([]bool, pages)
			}
			dead[p] = true
		}
	}
	return Snapshot{
		Pages:   pages,
		OOB:     store.OOBSnapshot(),
		Journal: store.JournalSnapshot(),
		Bad:     bad,
		Dead:    dead,
	}
}

// dead reports whether page p sits on a failed die.
func (s Snapshot) dead(p int64) bool { return len(s.Dead) > 0 && s.Dead[p] }

// Validate reports whether the snapshot is structurally sound.
func (s Snapshot) Validate() error {
	if s.Pages < 0 {
		return fmt.Errorf("recovery: negative page count %d", s.Pages)
	}
	if int64(len(s.OOB)) != s.Pages {
		return fmt.Errorf("recovery: %d OOB records for %d pages", len(s.OOB), s.Pages)
	}
	if int64(len(s.Bad)) != s.Pages {
		return fmt.Errorf("recovery: %d bad flags for %d pages", len(s.Bad), s.Pages)
	}
	if s.Dead != nil && int64(len(s.Dead)) != s.Pages {
		return fmt.Errorf("recovery: %d dead flags for %d pages", len(s.Dead), s.Pages)
	}
	return nil
}

// Winner is the recovered binding of one logical page: the newest durable
// record claiming it.
type Winner struct {
	LPN     ftl.LPN
	PPN     ssd.PPN
	Hash    trace.Hash
	Seq     uint64
	Revived bool // won via a journal revival, not a program
}

// GarbagePage is a programmed page no surviving logical page claims — a
// zombie candidate for re-seeding the dead-value pool. LPN and Hash come
// from its OOB: the last logical owner and content it was programmed with.
type GarbagePage struct {
	PPN  ssd.PPN
	LPN  ftl.LPN
	Hash trace.Hash
	Seq  uint64
}

// Report summarises the cost and findings of the scan.
type Report struct {
	PagesScanned     int64 // every non-bad page is read once
	TornDiscarded    int64 // pages interrupted mid-program or mid-erase
	BadSkipped       int64 // pages in retired blocks
	ParityPages      int64 // RAIN parity pages: scanned but never claimed
	TransPages       int64 // DFTL translation pages: stale after a crash, never claimed
	DeadGarbage      int64 // unreadable dead-block zombies kept out of the pool
	JournalReplayed  int   // journal records that survived validation
	JournalDiscarded int   // journal records invalidated by erase/reprogram
	Winners          int   // logical pages recovered
	Garbage          int   // zombie pages available to the pool
}

// ScanCost returns the flash time of the recovery scan: one read per
// scanned page.
func (r Report) ScanCost(readLatency ssd.Time) ssd.Time {
	return ssd.Time(r.PagesScanned) * readLatency
}

// Plan is the output of the recovery scan, ready to drive Store.Rebuild
// and mapper/pool reconstruction.
type Plan struct {
	// Winners holds one entry per recovered logical page, LPN-ascending.
	Winners []Winner
	// Garbage holds the unclaimed programmed pages, Seq-ascending (oldest
	// first, so pool insertion order mirrors death order).
	Garbage []GarbagePage
	Report  Report
}

// BuildPlan runs the last-writer-wins scan over snap.
//
// A journal record (L → P, seq) is valid only while page P still holds the
// program it referred to: P's OOB must be Programmed with Seq ≤ the
// record's. An erase clears the OOB and a reprogram raises its Seq above
// every older journal record, so stale bindings self-invalidate. Ties
// (impossible under the store's single sequence counter, but reachable
// from fuzzed snapshots) keep the earlier-scanned candidate.
func BuildPlan(snap Snapshot) (Plan, error) {
	if err := snap.Validate(); err != nil {
		return Plan{}, err
	}
	var rep Report
	best := make(map[ftl.LPN]Winner)
	claim := func(w Winner) {
		if w.LPN == ftl.InvalidLPN {
			return
		}
		if cur, ok := best[w.LPN]; !ok || w.Seq > cur.Seq {
			best[w.LPN] = w
		}
	}

	// Phase 1: the OOB scan proper — every page in a live block is read.
	for p := int64(0); p < snap.Pages; p++ {
		if snap.Bad[p] {
			rep.BadSkipped++
			continue
		}
		rep.PagesScanned++
		o := snap.OOB[p]
		switch o.State {
		case ftl.OOBTorn:
			rep.TornDiscarded++
		case ftl.OOBProgrammed:
			if o.Parity {
				// Parity OOB carries a coverage mask, not a mapping claim;
				// the store's RAIN tail restores it separately.
				rep.ParityPages++
				continue
			}
			if o.Trans {
				// A translation page's LPN field is a TVPN, not a host claim,
				// and after a crash every surviving translation page is stale
				// against this very scan: RecoverDftl re-lands a fresh
				// checkpoint and translation GC reclaims the old generation.
				rep.TransPages++
				continue
			}
			claim(Winner{LPN: o.LPN, PPN: ssd.PPN(p), Hash: o.Hash, Seq: o.Seq, Revived: o.Revived})
		}
	}

	// Phase 2: replay the mapping journal over the scan results.
	for _, r := range snap.Journal {
		p := int64(r.PPN)
		if p < 0 || p >= snap.Pages || snap.Bad[p] {
			rep.JournalDiscarded++
			continue
		}
		o := snap.OOB[p]
		if o.State != ftl.OOBProgrammed || o.Parity || o.Trans || o.Seq > r.Seq {
			rep.JournalDiscarded++
			continue
		}
		rep.JournalReplayed++
		claim(Winner{LPN: r.LPN, PPN: r.PPN, Hash: o.Hash, Seq: r.Seq, Revived: r.Revived})
	}

	plan := Plan{Winners: make([]Winner, 0, len(best))}
	claimed := make(map[ssd.PPN]bool, len(best))
	for _, w := range best {
		plan.Winners = append(plan.Winners, w)
		claimed[w.PPN] = true
	}
	sort.Slice(plan.Winners, func(i, j int) bool {
		return plan.Winners[i].LPN < plan.Winners[j].LPN
	})

	// Phase 3: programmed pages nobody claims are zombies. Parity pages
	// hold no host data, and dead-block zombies can never be read again,
	// so neither re-seeds the pool.
	for p := int64(0); p < snap.Pages; p++ {
		if snap.Bad[p] || snap.OOB[p].State != ftl.OOBProgrammed || claimed[ssd.PPN(p)] {
			continue
		}
		o := snap.OOB[p]
		if o.Parity || o.Trans {
			// Neither holds host data; translation garbage is reclaimed by
			// the translation GC stream, not the dead-value pool.
			continue
		}
		if snap.dead(p) {
			rep.DeadGarbage++
			continue
		}
		plan.Garbage = append(plan.Garbage, GarbagePage{PPN: ssd.PPN(p), LPN: o.LPN, Hash: o.Hash, Seq: o.Seq})
	}
	sort.Slice(plan.Garbage, func(i, j int) bool {
		return plan.Garbage[i].Seq < plan.Garbage[j].Seq
	})

	rep.Winners = len(plan.Winners)
	rep.Garbage = len(plan.Garbage)
	plan.Report = rep
	return plan, nil
}

// ValidPPNs returns the winner pages (unique, ascending) — the `valid`
// argument to Store.Rebuild.
func (p Plan) ValidPPNs() []ssd.PPN {
	seen := make(map[ssd.PPN]bool, len(p.Winners))
	out := make([]ssd.PPN, 0, len(p.Winners))
	for _, w := range p.Winners {
		if !seen[w.PPN] {
			seen[w.PPN] = true
			out = append(out, w.PPN)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GarbagePPNs returns the zombie pages — the `garbage` argument to
// Store.Rebuild.
func (p Plan) GarbagePPNs() []ssd.PPN {
	out := make([]ssd.PPN, len(p.Garbage))
	for i, g := range p.Garbage {
		out[i] = g.PPN
	}
	return out
}

// RebuildPlan describes the RAIN rebuild work that survives a crash: the
// dies that had failed before power was lost and the recovered pages
// still stranded on them. The online rebuild daemon resumes against
// exactly this set — pages it re-landed before the crash are durable and
// no longer appear here.
type RebuildPlan struct {
	// DeadDies lists the flat die indices (channel→chip→die order) whose
	// every block is dead.
	DeadDies []int
	// Pending lists the winner pages on dead blocks, unique and ascending
	// — each one a reconstruction target for the rebuild daemon.
	Pending []ssd.PPN
}

// Rebuild derives the post-crash RAIN rebuild plan from the snapshot's
// dead map and the scan's winners. The zero plan (no dead dies, nothing
// pending) comes back when no die has failed.
func Rebuild(geo ssd.Geometry, snap Snapshot, plan Plan) RebuildPlan {
	var rp RebuildPlan
	if len(snap.Dead) == 0 {
		return rp
	}
	// A die's planes are contiguous in the plane order and blocks are laid
	// out plane-major, so each die owns one contiguous PPN range.
	dies := geo.TotalChips() * geo.DiesPerChip
	perDie := geo.TotalPages() / int64(dies)
	for d := 0; d < dies; d++ {
		allDead := true
		for p := int64(d) * perDie; p < int64(d+1)*perDie; p++ {
			if !snap.Dead[p] {
				allDead = false
				break
			}
		}
		if allDead {
			rp.DeadDies = append(rp.DeadDies, d)
		}
	}
	seen := make(map[ssd.PPN]bool)
	for _, w := range plan.Winners {
		if snap.dead(int64(w.PPN)) && !seen[w.PPN] {
			seen[w.PPN] = true
			rp.Pending = append(rp.Pending, w.PPN)
		}
	}
	sort.Slice(rp.Pending, func(i, j int) bool { return rp.Pending[i] < rp.Pending[j] })
	return rp
}
