package recovery

import (
	"encoding/binary"
	"fmt"

	"zombiessd/internal/ftl"
	"zombiessd/internal/ssd"
)

// Binary snapshot format, version 1 (little-endian, fixed width):
//
//	magic   8 B  "ZOMBREC1"
//	pages   8 B  uint64
//	oob     pages × 30 B  (state 1, lpn 4, hash 16, seq 8, revived 1)
//	jlen    8 B  uint64
//	journal jlen × 17 B   (lpn 4, ppn 4, seq 8, revived 1)
//	bad     ⌈pages/8⌉ B   bitmap, LSB-first
//
// The decoder never allocates more than the input could justify, so it is
// safe to feed fuzzer-corrupted data.

const snapshotMagic = "ZOMBREC1"

const (
	oobRecordSize     = 1 + 4 + 16 + 8 + 1
	journalRecordSize = 4 + 4 + 8 + 1
)

// Encode serialises snap into the versioned binary format.
func (s Snapshot) Encode() []byte {
	size := len(snapshotMagic) + 8 + len(s.OOB)*oobRecordSize + 8 +
		len(s.Journal)*journalRecordSize + (len(s.Bad)+7)/8
	buf := make([]byte, 0, size)
	buf = append(buf, snapshotMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Pages))
	for _, o := range s.OOB {
		buf = append(buf, byte(o.State))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(o.LPN))
		buf = append(buf, o.Hash[:]...)
		buf = binary.LittleEndian.AppendUint64(buf, o.Seq)
		buf = append(buf, boolByte(o.Revived))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.Journal)))
	for _, r := range s.Journal {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.LPN))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.PPN))
		buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
		buf = append(buf, boolByte(r.Revived))
	}
	bits := make([]byte, (len(s.Bad)+7)/8)
	for i, b := range s.Bad {
		if b {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	return append(buf, bits...)
}

// Decode parses data produced by Encode (or corrupted variants of it),
// rejecting anything structurally inconsistent.
func Decode(data []byte) (Snapshot, error) {
	if len(data) < len(snapshotMagic)+8 {
		return Snapshot{}, fmt.Errorf("recovery: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return Snapshot{}, fmt.Errorf("recovery: bad snapshot magic")
	}
	data = data[len(snapshotMagic):]
	pages := binary.LittleEndian.Uint64(data)
	data = data[8:]
	if pages > uint64(len(data))/oobRecordSize {
		return Snapshot{}, fmt.Errorf("recovery: page count %d exceeds snapshot size", pages)
	}
	s := Snapshot{Pages: int64(pages), OOB: make([]ftl.OOB, pages)}
	for i := range s.OOB {
		state := ftl.OOBState(data[0])
		if state > ftl.OOBTorn {
			return Snapshot{}, fmt.Errorf("recovery: OOB record %d has unknown state %d", i, state)
		}
		revived, err := byteBool(data[29])
		if err != nil {
			return Snapshot{}, fmt.Errorf("recovery: OOB record %d: %v", i, err)
		}
		s.OOB[i] = ftl.OOB{
			State:   state,
			LPN:     ftl.LPN(binary.LittleEndian.Uint32(data[1:])),
			Seq:     binary.LittleEndian.Uint64(data[21:]),
			Revived: revived,
		}
		copy(s.OOB[i].Hash[:], data[5:21])
		data = data[oobRecordSize:]
	}
	if len(data) < 8 {
		return Snapshot{}, fmt.Errorf("recovery: snapshot truncated before journal")
	}
	jlen := binary.LittleEndian.Uint64(data)
	data = data[8:]
	if jlen > uint64(len(data))/journalRecordSize {
		return Snapshot{}, fmt.Errorf("recovery: journal length %d exceeds snapshot size", jlen)
	}
	s.Journal = make([]ftl.Binding, jlen)
	for i := range s.Journal {
		revived, err := byteBool(data[16])
		if err != nil {
			return Snapshot{}, fmt.Errorf("recovery: journal record %d: %v", i, err)
		}
		s.Journal[i] = ftl.Binding{
			LPN:     ftl.LPN(binary.LittleEndian.Uint32(data)),
			PPN:     ssd.PPN(binary.LittleEndian.Uint32(data[4:])),
			Seq:     binary.LittleEndian.Uint64(data[8:]),
			Revived: revived,
		}
		data = data[journalRecordSize:]
	}
	bitBytes := (int(pages) + 7) / 8
	if len(data) != bitBytes {
		return Snapshot{}, fmt.Errorf("recovery: bad-block bitmap is %d bytes, want %d", len(data), bitBytes)
	}
	if pad := uint(pages) % 8; pad != 0 && data[bitBytes-1]>>pad != 0 {
		return Snapshot{}, fmt.Errorf("recovery: bad-block bitmap has padding bits set")
	}
	s.Bad = make([]bool, pages)
	for i := range s.Bad {
		s.Bad[i] = data[i/8]&(1<<(i%8)) != 0
	}
	return s, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func byteBool(b byte) (bool, error) {
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("bad bool byte %d", b)
}
