package recovery

import (
	"bytes"
	"testing"

	"zombiessd/internal/ftl"
	"zombiessd/internal/ssd"
)

// FuzzRecoveryScan feeds corrupted and truncated snapshot encodings through
// Decode → BuildPlan and checks that either the input is rejected with an
// error or the resulting plan upholds every recovery invariant. The scan
// must never panic, never trust a journal record pointing at an erased,
// torn, bad or out-of-range page, and never hand the same physical page to
// both the mapper and the dead-value pool.
func FuzzRecoveryScan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapshotMagic))
	f.Add(Snapshot{OOB: []ftl.OOB{}, Journal: []ftl.Binding{}, Bad: []bool{}}.Encode())
	f.Add(snapFuzzSeed().Encode())
	trunc := snapFuzzSeed().Encode()
	f.Add(trunc[:len(trunc)-3])
	flipped := snapFuzzSeed().Encode()
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			return
		}
		// Anything Decode accepts must be structurally valid and re-encode
		// to the exact same bytes.
		if err := snap.Validate(); err != nil {
			t.Fatalf("decoded snapshot fails validation: %v", err)
		}
		if !bytes.Equal(snap.Encode(), data) {
			t.Fatalf("encode(decode(data)) differs from data")
		}
		plan, err := BuildPlan(snap)
		if err != nil {
			t.Fatalf("BuildPlan rejected a validated snapshot: %v", err)
		}
		claimed := make(map[ssd.PPN]bool, len(plan.Winners))
		for i, w := range plan.Winners {
			if i > 0 && plan.Winners[i-1].LPN >= w.LPN {
				t.Fatalf("winners not strictly LPN-ascending at %d", i)
			}
			if w.LPN == ftl.InvalidLPN {
				t.Fatalf("winner %d claims the invalid LPN", i)
			}
			p := int64(w.PPN)
			if p < 0 || p >= snap.Pages {
				t.Fatalf("winner %d PPN %d out of range [0,%d)", i, w.PPN, snap.Pages)
			}
			if snap.Bad[p] {
				t.Fatalf("winner %d maps to bad page %d", i, w.PPN)
			}
			if snap.OOB[p].State != ftl.OOBProgrammed {
				t.Fatalf("winner %d maps to non-programmed page %d (state %d)", i, w.PPN, snap.OOB[p].State)
			}
			claimed[w.PPN] = true
		}
		for i, g := range plan.Garbage {
			if i > 0 && plan.Garbage[i-1].Seq > g.Seq {
				t.Fatalf("garbage not Seq-ascending at %d", i)
			}
			p := int64(g.PPN)
			if p < 0 || p >= snap.Pages || snap.Bad[p] || snap.OOB[p].State != ftl.OOBProgrammed {
				t.Fatalf("garbage %d page %d is not a live programmed page", i, g.PPN)
			}
			if claimed[g.PPN] {
				t.Fatalf("page %d is both a winner and garbage", g.PPN)
			}
		}
		rep := plan.Report
		if rep.PagesScanned+rep.BadSkipped != snap.Pages {
			t.Fatalf("scanned %d + bad %d != %d pages", rep.PagesScanned, rep.BadSkipped, snap.Pages)
		}
		if rep.JournalReplayed+rep.JournalDiscarded != len(snap.Journal) {
			t.Fatalf("replayed %d + discarded %d != %d journal records",
				rep.JournalReplayed, rep.JournalDiscarded, len(snap.Journal))
		}
		if rep.Winners != len(plan.Winners) || rep.Garbage != len(plan.Garbage) {
			t.Fatalf("report counts %d/%d disagree with plan %d/%d",
				rep.Winners, rep.Garbage, len(plan.Winners), len(plan.Garbage))
		}
	})
}

// snapFuzzSeed is a small snapshot with every record flavour represented,
// used to seed the corpus.
func snapFuzzSeed() Snapshot {
	s := Snapshot{Pages: 4, OOB: make([]ftl.OOB, 4), Bad: make([]bool, 4)}
	s.OOB[0] = ftl.OOB{State: ftl.OOBProgrammed, LPN: 0, Hash: hashOf(1), Seq: 1}
	s.OOB[1] = ftl.OOB{State: ftl.OOBProgrammed, LPN: 0, Hash: hashOf(2), Seq: 2}
	s.OOB[2] = ftl.OOB{State: ftl.OOBTorn}
	s.Bad[3] = true
	s.Journal = []ftl.Binding{{LPN: 1, PPN: 0, Seq: 3, Revived: true}}
	return s
}
