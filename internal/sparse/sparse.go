// Package sparse provides a chunked array that allocates backing storage
// lazily, one fixed-size chunk at a time. It stands in for the flat
// per-page metadata slices of the FTL (page state, OOB records, reverse
// mappings): a 1 TB drive has 256 M physical pages, and flat arrays
// indexed by PPN cost gigabytes even when a CI-scale trace only ever
// touches a few hundred blocks. A sparse array costs one slice-header
// table up front and materializes only the chunks that are written, while
// reads of untouched indices return a caller-chosen default — so swapping
// a flat slice for a sparse array is value-identical, chunk for chunk.
package sparse

import "fmt"

// chunkShift sets the chunk size to 1<<chunkShift entries. 4096 entries
// per chunk keeps a chunk of 32-byte records at 128 KB — big enough to
// amortize the indirection, small enough that a plane's frontier blocks
// on the 1 TB geometry materialize megabytes, not gigabytes.
const chunkShift = 12

const (
	chunkSize = 1 << chunkShift
	chunkMask = chunkSize - 1
)

// Array is a fixed-length array of T whose storage materializes in
// chunks on first write. Unwritten indices read as the default value.
// The zero Array is unusable; construct with New.
type Array[T comparable] struct {
	n      int64
	def    T
	chunks [][]T
}

// New returns a length-n array whose every element reads as def until
// written. Storage cost before any Set is one slice header per chunk
// (24 bytes per 4096 entries).
func New[T comparable](n int64, def T) *Array[T] {
	if n < 0 {
		panic(fmt.Sprintf("sparse: negative length %d", n))
	}
	return &Array[T]{
		n:      n,
		def:    def,
		chunks: make([][]T, (n+chunkMask)>>chunkShift),
	}
}

// Len returns the array's logical length.
func (a *Array[T]) Len() int64 { return a.n }

// Get returns the element at index i, or the default if its chunk was
// never written. Panics when i is out of range, like a slice would.
func (a *Array[T]) Get(i int64) T {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("sparse: index %d out of range [0,%d)", i, a.n))
	}
	c := a.chunks[i>>chunkShift]
	if c == nil {
		return a.def
	}
	return c[i&chunkMask]
}

// Set writes the element at index i, materializing its chunk (filled
// with the default) on first touch. Panics when i is out of range.
func (a *Array[T]) Set(i int64, v T) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("sparse: index %d out of range [0,%d)", i, a.n))
	}
	ci := i >> chunkShift
	c := a.chunks[ci]
	if c == nil {
		c = make([]T, chunkSize)
		var zero T
		if a.def != zero {
			for j := range c {
				c[j] = a.def
			}
		}
		a.chunks[ci] = c
	}
	c[i&chunkMask] = v
}

// Reset drops every materialized chunk: all elements read as the default
// again, at the cost of one nil store per chunk-table slot. Equivalent to
// (but much cheaper than) looping Set(i, def) over the whole array.
func (a *Array[T]) Reset() {
	for i := range a.chunks {
		a.chunks[i] = nil
	}
}

// ForEach visits, in ascending index order, every element whose chunk has
// been materialized — the only indices that can differ from the default.
// Callers that treat the default as "absent" (InvalidLPN, an empty OOB)
// get a full logical scan at resident cost. f must not Set into a chunk
// that has not been materialized yet.
func (a *Array[T]) ForEach(f func(i int64, v T)) {
	for ci, c := range a.chunks {
		if c == nil {
			continue
		}
		base := int64(ci) << chunkShift
		limit := a.n - base
		if limit > chunkSize {
			limit = chunkSize
		}
		for j := int64(0); j < limit; j++ {
			f(base+j, c[j])
		}
	}
}

// Chunks reports how many chunks have been materialized — the resident
// footprint in units of chunkSize entries, for tests and diagnostics.
func (a *Array[T]) Chunks() int {
	n := 0
	for _, c := range a.chunks {
		if c != nil {
			n++
		}
	}
	return n
}

// ChunkEntries returns the number of entries per chunk.
func ChunkEntries() int { return chunkSize }
