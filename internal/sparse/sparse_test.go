package sparse

import (
	"math/rand"
	"testing"
)

func TestDefaultFill(t *testing.T) {
	a := New[uint32](10_000, ^uint32(0))
	for _, i := range []int64{0, 1, chunkSize - 1, chunkSize, 9_999} {
		if got := a.Get(i); got != ^uint32(0) {
			t.Fatalf("Get(%d) = %d, want default", i, got)
		}
	}
	if a.Chunks() != 0 {
		t.Fatalf("reads materialized %d chunks", a.Chunks())
	}
	a.Set(chunkSize+5, 42)
	if got := a.Get(chunkSize + 5); got != 42 {
		t.Fatalf("Get after Set = %d, want 42", got)
	}
	// The rest of the touched chunk still reads as the default.
	if got := a.Get(chunkSize + 6); got != ^uint32(0) {
		t.Fatalf("neighbor of Set = %d, want default", got)
	}
	if a.Chunks() != 1 {
		t.Fatalf("one Set materialized %d chunks, want 1", a.Chunks())
	}
}

func TestLastChunkPartial(t *testing.T) {
	// Length not a multiple of the chunk size: the last chunk is partial.
	n := int64(chunkSize + chunkSize/2)
	a := New[int](n, -1)
	a.Set(n-1, 7)
	if got := a.Get(n - 1); got != 7 {
		t.Fatalf("Get(n-1) = %d, want 7", got)
	}
}

func TestBoundsPanic(t *testing.T) {
	a := New[int](100, 0)
	for _, i := range []int64{-1, 100, 1 << 40} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			a.Get(i)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", i)
				}
			}()
			a.Set(i, 1)
		}()
	}
}

// TestAgainstReference drives random Get/Set against a map reference: a
// sparse array must be value-identical to the flat slice it replaces.
func TestAgainstReference(t *testing.T) {
	const n = 3 * chunkSize
	rng := rand.New(rand.NewSource(11))
	a := New[uint64](n, 99)
	ref := map[int64]uint64{}
	for op := 0; op < 200_000; op++ {
		i := rng.Int63n(n)
		if rng.Intn(2) == 0 {
			v := rng.Uint64()
			a.Set(i, v)
			ref[i] = v
			continue
		}
		want, ok := ref[i]
		if !ok {
			want = 99
		}
		if got := a.Get(i); got != want {
			t.Fatalf("op %d: Get(%d) = %d, want %d", op, i, got, want)
		}
	}
}

func TestResetAndForEach(t *testing.T) {
	n := int64(2*chunkSize + 10) // partial last chunk
	a := New[int](n, -1)
	a.Set(3, 30)
	a.Set(n-1, 99)
	var got []int64
	a.ForEach(func(i int64, v int) {
		if v != -1 {
			got = append(got, i)
		}
	})
	if len(got) != 2 || got[0] != 3 || got[1] != n-1 {
		t.Fatalf("ForEach non-default indices = %v, want [3 %d]", got, n-1)
	}
	// ForEach must stop at the logical length, not the chunk boundary.
	count := 0
	a.ForEach(func(i int64, v int) {
		count++
		if i >= n {
			t.Fatalf("ForEach visited out-of-range index %d", i)
		}
	})
	if want := int(chunkSize + 10); count != want {
		t.Fatalf("ForEach visited %d entries, want %d (two materialized chunks)", count, want)
	}
	a.Reset()
	if a.Chunks() != 0 {
		t.Fatalf("Reset left %d chunks", a.Chunks())
	}
	if a.Get(3) != -1 || a.Get(n-1) != -1 {
		t.Fatal("Reset did not restore defaults")
	}
	visited := false
	a.ForEach(func(int64, int) { visited = true })
	if visited {
		t.Fatal("ForEach visited entries after Reset")
	}
}

// TestHugeVirtualLength pins the point of the package: an array sized for
// the 1 TB drive's 256 M pages costs only the chunk table until written.
func TestHugeVirtualLength(t *testing.T) {
	const pages = 256 << 20
	a := New[uint32](pages, ^uint32(0))
	a.Set(pages-1, 1)
	a.Set(0, 2)
	if a.Chunks() != 2 {
		t.Fatalf("two writes materialized %d chunks, want 2", a.Chunks())
	}
	if a.Get(pages-1) != 1 || a.Get(0) != 2 || a.Get(pages/2) != ^uint32(0) {
		t.Fatal("values drifted at the extremes")
	}
}
